// Control-flow graph reconstruction over flattened function bodies.
//
// The static counter-equivalence verifier (DESIGN.md §14) must reason about
// *every* path through an instrumented function without trusting how the
// instrumentation enclave shaped the code. Working on interp::FlatFunc gives
// it exactly the code the interpreter will execute: branch targets are
// pre-resolved pcs, statically dead tree code has already been dropped, and
// synthetic control ops (the jump over an else arm, the final return) are
// marked so the verifier can treat them as zero-cost.
//
// Blocks here are *analysis* basic blocks: maximal straight-line runs that
// control flow enters only at the first op and leaves only after the last.
// Unlike the interpreter's accounting blocks (FlatFunc::blocks), calls and
// memory.grow do NOT end a block — they transfer control intra-procedurally
// to the next pc, so for path-sum purposes they are straight-line ops.
#pragma once

#include <cstdint>
#include <vector>

#include "interp/flatten.hpp"

namespace acctee::analysis {

/// One analysis basic block: ops [begin, end) of FlatFunc::code.
struct BasicBlock {
  uint32_t begin = 0;
  uint32_t end = 0;  // one past the last op
  std::vector<uint32_t> succs;  // successor block ids, deduplicated
  std::vector<uint32_t> preds;  // predecessor block ids, deduplicated
};

/// The reconstructed CFG of one flattened function. Blocks are in code
/// order and partition the code array; blocks[0] is the entry block.
struct Cfg {
  std::vector<BasicBlock> blocks;
  std::vector<uint32_t> block_of_pc;  // pc -> id of the containing block

  const BasicBlock& block_at_pc(uint32_t pc) const {
    return blocks[block_of_pc[pc]];
  }
};

/// True if `op` ends an analysis basic block (is a control transfer).
bool is_block_terminator(const interp::FlatOp& op);

/// Reconstructs the CFG of a flattened function. Every branch target
/// starts a block; every control transfer (if/br/br_if/br_table/return/
/// unreachable, synthetic or not) ends one. Blocks unreachable from the
/// entry are still materialised (they exist in the code array) but simply
/// have no predecessors.
Cfg build_cfg(const interp::FlatFunc& func);

}  // namespace acctee::analysis
