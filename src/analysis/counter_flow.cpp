#include "analysis/counter_flow.hpp"

#include <optional>
#include <sstream>

namespace acctee::analysis {

using interp::FlatFunc;
using interp::FlatOp;
using wasm::Op;

Classification classify_ops(const FlatFunc& func, const Cfg& cfg,
                            uint32_t counter_global) {
  const std::vector<FlatOp>& code = func.code;
  const uint32_t n = static_cast<uint32_t>(code.size());
  Classification cls;
  cls.op_class.assign(n, OpClass::Workload);

  auto plain = [&](uint32_t pc, Op op) {
    return pc < n && !code[pc].synthetic && code[pc].op == op;
  };
  uint32_t pc = 0;
  while (pc + 3 < n) {
    if (plain(pc, Op::GlobalGet) && code[pc].a == counter_global &&
        plain(pc + 1, Op::I64Const) && plain(pc + 2, Op::I64Add) &&
        plain(pc + 3, Op::GlobalSet) && code[pc + 3].a == counter_global &&
        cfg.block_of_pc[pc] == cfg.block_of_pc[pc + 3]) {
      for (uint32_t i = 0; i < 4; ++i) {
        cls.op_class[pc + i] = OpClass::Increment;
      }
      cls.increments.emplace_back(pc, code[pc + 1].b);
      pc += 4;
    } else {
      ++pc;
    }
  }
  return cls;
}

namespace {

/// Renders the block chain from the entry to `b` via first-reach parents.
std::string render_path(const Cfg& cfg, const std::vector<uint32_t>& parent,
                        uint32_t b) {
  std::vector<uint32_t> chain;
  for (uint32_t x = b; x != UINT32_MAX; x = parent[x]) {
    chain.push_back(x);
    if (x == 0) break;
  }
  std::ostringstream out;
  if (chain.back() == 0) {
    out << "entry";
  } else {
    // The chain roots at a dead-code seed, not the function entry.
    out << "unreachable code at pc " << cfg.blocks[chain.back()].begin;
  }
  for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
    if (*it == chain.back()) continue;
    out << " -> pc " << cfg.blocks[*it].begin;
  }
  return out.str();
}

std::string describe_debt(uint64_t debt) {
  std::ostringstream out;
  int64_t signed_debt = static_cast<int64_t>(debt);
  if (signed_debt >= 0) {
    out << "the increments undercount the executed weighted cost by "
        << signed_debt;
  } else {
    out << "the increments overcount the executed weighted cost by "
        << -signed_debt;
  }
  return out.str();
}

}  // namespace

FlowResult run_counter_flow(const FlatFunc& func, const Cfg& cfg,
                            const Classification& cls,
                            const std::vector<uint32_t>& balanced_blocks,
                            const std::vector<EdgeCharge>& edge_charges,
                            const instrument::WeightTable& weights,
                            const std::string& label,
                            const instrument::HostChargePolicy& host_charge) {
  const std::vector<FlatOp>& code = func.code;
  const uint32_t n = static_cast<uint32_t>(code.size());
  FlowResult result;
  if (n == 0 || cfg.blocks.empty()) return result;

  std::vector<uint64_t> inc_amount(n, 0);
  std::vector<bool> inc_start(n, false);
  for (const auto& [pc, amount] : cls.increments) {
    inc_start[pc] = true;
    inc_amount[pc] = amount;
  }
  std::vector<bool> balanced(cfg.blocks.size(), false);
  for (uint32_t b : balanced_blocks) balanced[b] = true;

  auto edge_charge = [&](uint32_t from, uint32_t to) {
    uint64_t total = 0;
    for (const EdgeCharge& c : edge_charges) {
      if (c.from == from && c.to == to) total += c.amount;
    }
    return total;
  };

  // Single-assignment forward propagation: the debt entering each block is
  // fixed by the first path that reaches it; every other path must agree.
  std::vector<std::optional<uint64_t>> in_debt(cfg.blocks.size());
  std::vector<uint32_t> parent(cfg.blocks.size(), UINT32_MAX);
  std::vector<uint32_t> worklist;
  in_debt[0] = 0;
  worklist.push_back(0);
  // Blocks unreachable from the entry still get checked: dead code begins
  // immediately after an unconditional branch, where the instrumenter has
  // just flushed its pending count, so genuine output balances from debt 0
  // there too. Without this, a corrupted increment hidden in dead code
  // would be invisible to the dataflow (and only sometimes caught by the
  // write-protection scan). `seed` walks block indices in order, so dead
  // chains are entered at their head.
  uint32_t seed = 1;

  while (true) {
    if (worklist.empty()) {
      while (seed < cfg.blocks.size() && in_debt[seed].has_value()) ++seed;
      if (seed == cfg.blocks.size()) break;
      in_debt[seed] = 0;
      worklist.push_back(seed);
    }
    uint32_t b = worklist.back();
    worklist.pop_back();
    const BasicBlock& bb = cfg.blocks[b];
    uint64_t debt = *in_debt[b];

    if (!balanced[b]) {
      for (uint32_t pc = bb.begin; pc < bb.end; ++pc) {
        if (cls.op_class[pc] == OpClass::Workload && !code[pc].synthetic) {
          // Wrapping, like i64.add. Host-entry ops (FlatOp::a is the callee
          // of a direct call) carry the agreed surcharge.
          debt += weights.weight(code[pc].op) +
                  host_charge.surcharge(code[pc].op, code[pc].a);
        } else if (inc_start[pc]) {
          debt -= inc_amount[pc];
        }
      }
    }

    const FlatOp& last = code[bb.end - 1];
    if (last.op == Op::Return || last.op == Op::Unreachable) {
      if (debt != 0) {
        result.ok = false;
        std::ostringstream out;
        out << "counter-flow violation in " << label << ": path "
            << render_path(cfg, parent, b) << " exits at pc " << (bb.end - 1)
            << " with outstanding debt " << static_cast<int64_t>(debt) << " ("
            << describe_debt(debt) << ")";
        result.error = out.str();
        return result;
      }
      continue;
    }

    for (uint32_t s : bb.succs) {
      uint64_t out_debt = debt + edge_charge(b, s);
      if (!in_debt[s].has_value()) {
        in_debt[s] = out_debt;
        parent[s] = b;
        worklist.push_back(s);
      } else if (*in_debt[s] != out_debt) {
        result.ok = false;
        std::ostringstream out;
        out << "counter-flow violation in " << label
            << ": paths reaching pc " << cfg.blocks[s].begin
            << " disagree on the outstanding weighted cost:\n  path A: "
            << render_path(cfg, parent, s) << " carries debt "
            << static_cast<int64_t>(*in_debt[s]) << "\n  path B: "
            << render_path(cfg, parent, b) << " -> pc " << cfg.blocks[s].begin
            << " carries debt " << static_cast<int64_t>(out_debt)
            << "\n  (every join must agree for the counter increments to be "
               "path-independent)";
        result.error = out.str();
        return result;
      }
    }
  }
  return result;
}

}  // namespace acctee::analysis
