// The counter-flow abstract domain (DESIGN.md §14).
//
// Classification first separates the flat code into the *workload* (the
// recovered original program), the recognised counter *increments*
// (`global.get C / i64.const n / i64.add / global.set C`), and loop-region
// *scaffolding* (the save/epilogue ops of a hoisted counted loop, marked by
// analysis/loops.cpp). Anything left over that touches the counter global
// is an integrity violation and rejected before dataflow even runs.
//
// The dataflow then propagates a single abstract value per CFG edge — the
// "debt": accumulated weighted workload cost minus applied increments, in
// wrapping uint64 arithmetic exactly matching the module's i64.add. The
// instrumentation passes' whole correctness argument is that this debt is a
// *path-invariant* quantity: dominator folding carries a pending amount
// across block boundaries only where every path agrees on it, and the
// predecessor-min rule at joins equalises the arms first. So the verifier
// demands (1) equal debt wherever two paths meet and (2) zero debt at every
// function exit — which together prove that along EVERY path the increments
// sum to the naive per-block weighted cost, without mirroring any of the
// optimiser's reasoning.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/cfg.hpp"
#include "instrument/weights.hpp"
#include "interp/flatten.hpp"

namespace acctee::analysis {

/// What one flat op is, once the instrumentation has been recognised.
enum class OpClass : uint8_t {
  Workload,   // part of the recovered original program (charged its weight)
  Increment,  // one op of a recognised 4-op counter increment
  Scaffold,   // hoisted-loop save/epilogue op (summarised by its region)
};

struct Classification {
  std::vector<OpClass> op_class;  // one entry per flat op
  // amount[pc] for each pc that *starts* a recognised increment sequence:
  // raw i64 bits of the constant the sequence adds to the counter.
  std::vector<std::pair<uint32_t, uint64_t>> increments;  // sorted by pc

  uint32_t increment_count() const {
    return static_cast<uint32_t>(increments.size());
  }
};

/// Recognises every canonical increment sequence (all four ops inside one
/// basic block — a branch into the middle of a sequence de-recognises it,
/// after which the write-protection check rejects the module). Everything
/// else is initially Workload.
Classification classify_ops(const interp::FlatFunc& func, const Cfg& cfg,
                            uint32_t counter_global);

/// A constant charge attached to one CFG edge: leaving a constant-trip
/// counted loop costs body_weight * trips even though the loop body itself
/// carries no increment at all.
struct EdgeCharge {
  uint32_t from = 0;
  uint32_t to = 0;
  uint64_t amount = 0;
};

struct FlowResult {
  bool ok = true;
  /// Human-readable counterexample (a concrete path disagreement or an
  /// exit with outstanding debt); empty when ok.
  std::string error;
};

/// Runs the debt dataflow. `balanced_blocks` are loop-region bodies whose
/// net cost the region summary already accounts for (treated as debt-
/// neutral); `edge_charges` add region costs on specific edges. `label`
/// names the function in counterexamples. `host_charge` prices host-entry
/// ops at weight + surcharge, mirroring the instrumenter exactly.
FlowResult run_counter_flow(const interp::FlatFunc& func, const Cfg& cfg,
                            const Classification& cls,
                            const std::vector<uint32_t>& balanced_blocks,
                            const std::vector<EdgeCharge>& edge_charges,
                            const instrument::WeightTable& weights,
                            const std::string& label,
                            const instrument::HostChargePolicy& host_charge = {});

}  // namespace acctee::analysis
