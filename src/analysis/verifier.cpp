#include "analysis/verifier.hpp"

#include <algorithm>
#include <sstream>

#include "analysis/cfg.hpp"
#include "analysis/counter_flow.hpp"
#include "analysis/dominators.hpp"
#include "analysis/loops.hpp"
#include "common/bytes.hpp"
#include "instrument/passes.hpp"
#include "wasm/validator.hpp"

namespace acctee::analysis {

using interp::FlatFunc;
using interp::FlatOp;
using wasm::Op;

std::optional<std::string> check_counter_global(const wasm::Module& module,
                                                uint32_t counter_global) {
  auto exported = module.find_export(instrument::kCounterExport,
                                     wasm::ExternKind::Global);
  if (!exported) {
    return std::string("counter global is not exported as \"") +
           instrument::kCounterExport + "\"";
  }
  if (*exported != counter_global) {
    std::ostringstream out;
    out << "export \"" << instrument::kCounterExport << "\" names global "
        << *exported << ", expected the counter global " << counter_global;
    return out.str();
  }
  if (counter_global >= module.globals.size()) {
    return std::string("counter global index is out of range");
  }
  const wasm::Global& g = module.globals[counter_global];
  if (g.type != wasm::ValType::I64) {
    return std::string("counter global must have type i64");
  }
  if (!g.mutable_) {
    return std::string("counter global must be mutable");
  }
  if (g.init.op != Op::I64Const || g.init.imm != 0) {
    return std::string("counter global must be initialised to i64.const 0");
  }
  return std::nullopt;
}

namespace {

std::string function_label(const wasm::Module& module, uint32_t defined_index) {
  const uint32_t index =
      static_cast<uint32_t>(module.imports.size()) + defined_index;
  std::ostringstream out;
  out << "func[" << index << "]";
  const std::string& name = module.functions[defined_index].name;
  if (!name.empty()) out << " \"" << name << "\"";
  return out.str();
}

}  // namespace

VerifyResult verify_instrumented_module(
    const wasm::Module& module, const std::vector<FlatFunc>& flat,
    uint32_t counter_global, const instrument::WeightTable& weights,
    const instrument::HostChargePolicy& host_charge) {
  VerifyResult result;
  if (auto err = check_counter_global(module, counter_global)) {
    result.error = *err;
    return result;
  }

  for (uint32_t fi = 0; fi < flat.size(); ++fi) {
    const FlatFunc& func = flat[fi];
    const std::string label = function_label(module, fi);

    Cfg cfg = build_cfg(func);
    std::vector<uint32_t> idom = immediate_dominators(cfg);
    Classification cls = classify_ops(func, cfg, counter_global);
    std::vector<CountedRegion> regions = find_counted_regions(
        func, cfg, idom, cls, counter_global, weights, host_charge);
    apply_region_scaffolding(cls, regions);

    // Write protection: after recognition, nothing classified as workload
    // may touch the counter global. This also catches every mangled or
    // half-recognised increment/epilogue.
    for (uint32_t pc = 0; pc < func.code.size(); ++pc) {
      const FlatOp& op = func.code[pc];
      if (cls.op_class[pc] != OpClass::Workload || op.synthetic) continue;
      if ((op.op == Op::GlobalGet || op.op == Op::GlobalSet) &&
          op.a == counter_global) {
        std::ostringstream out;
        out << "write-protection violation in " << label << ": op "
            << wasm::op_info(op.op).name << " at pc " << pc
            << " accesses the counter global outside any recognised "
               "increment or hoisted-loop epilogue";
        result.error = out.str();
        return result;
      }
    }

    std::vector<uint32_t> balanced;
    std::vector<EdgeCharge> charges;
    FunctionReport report;
    report.index = static_cast<uint32_t>(module.imports.size()) + fi;
    report.name = module.functions[fi].name;
    report.blocks = static_cast<uint32_t>(cfg.blocks.size());
    report.increments = cls.increment_count();
    for (const CountedRegion& region : regions) {
      balanced.push_back(region.body_block);
      if (region.has_exit_charge) charges.push_back(region.exit_charge);
      if (region.hoisted) {
        ++report.hoisted_loops;
      } else {
        ++report.folded_loops;
      }
    }

    FlowResult flow = run_counter_flow(func, cfg, cls, balanced, charges,
                                       weights, label, host_charge);
    if (!flow.ok) {
      result.error = flow.error;
      return result;
    }

    // The recovered original program: every workload op, charged its agreed
    // weight, exactly once statically.
    uint64_t recovered = 0;
    for (uint32_t pc = 0; pc < func.code.size(); ++pc) {
      if (cls.op_class[pc] == OpClass::Workload && !func.code[pc].synthetic) {
        recovered += weights.weight(func.code[pc].op) +
                     host_charge.surcharge(func.code[pc].op, func.code[pc].a);
      }
    }
    report.recovered_cost = recovered;
    result.cost_vector.push_back(recovered);
    result.functions.push_back(std::move(report));
  }

  result.cost_vector_digest = cost_vector_digest(result.cost_vector);
  result.ok = true;
  return result;
}

VerifyResult verify_instrumented_module(
    const wasm::Module& module, uint32_t counter_global,
    const instrument::WeightTable& weights,
    const instrument::HostChargePolicy& host_charge) {
  wasm::validate(module);
  std::vector<FlatFunc> flat;
  flat.reserve(module.functions.size());
  for (const wasm::Function& func : module.functions) {
    flat.push_back(interp::flatten(module, func));
  }
  return verify_instrumented_module(module, flat, counter_global, weights,
                                    host_charge);
}

std::vector<uint64_t> naive_cost_vector(
    const wasm::Module& module, const instrument::WeightTable& weights,
    const instrument::HostChargePolicy& host_charge) {
  std::vector<uint64_t> costs;
  costs.reserve(module.functions.size());
  for (const wasm::Function& func : module.functions) {
    FlatFunc flat = interp::flatten(module, func);
    uint64_t cost = 0;
    for (const FlatOp& op : flat.code) {
      if (!op.synthetic) {
        cost += weights.weight(op.op) + host_charge.surcharge(op.op, op.a);
      }
    }
    costs.push_back(cost);
  }
  return costs;
}

crypto::Digest cost_vector_digest(const std::vector<uint64_t>& costs) {
  Bytes payload = to_bytes("acctee-cost-vector-v1");
  append_u32le(payload, static_cast<uint32_t>(costs.size()));
  for (uint64_t c : costs) append_u64le(payload, c);
  return crypto::sha256(payload);
}

std::optional<std::string> check_lowering(
    const std::vector<FlatFunc>& flat,
    const std::vector<interp::BcFunc>& lowered,
    const interp::LowerOptions& options, const crypto::Digest& digest) {
  if (!options.enable) {
    return std::string(
        "lowering is disabled for this module; nothing to bind");
  }
  // Independent re-derivation: lowering is a pure function of the verified
  // flattened code and the options, so the only accepted lowered form is
  // the one this process computes itself.
  const std::vector<interp::BcFunc> expected =
      interp::lower_module(flat, options);
  if (expected.size() != lowered.size()) {
    std::ostringstream out;
    out << "lowered function count " << lowered.size()
        << " does not match the flattened module (" << expected.size() << ")";
    return out.str();
  }
  for (size_t f = 0; f < expected.size(); ++f) {
    if (expected[f] == lowered[f]) continue;
    std::ostringstream out;
    out << "lowered code of defined func " << f
        << " differs from the deterministic re-lowering";
    const auto& want = expected[f].code;
    const auto& got = lowered[f].code;
    for (size_t pc = 0; pc < std::min(want.size(), got.size()); ++pc) {
      if (want[pc] == got[pc]) continue;
      out << " (first divergence at bc pc " << pc << ": expected "
          << interp::to_string(want[pc].op) << ", found "
          << interp::to_string(got[pc].op) << ")";
      break;
    }
    if (want.size() != got.size()) {
      out << " (" << got.size() << " instructions, expected " << want.size()
          << ")";
    }
    return out.str();
  }
  if (interp::lowering_digest(flat, lowered, options) != digest) {
    return std::string(
        "lowering digest does not bind the lowered form to the verified "
        "flattened code");
  }
  return std::nullopt;
}

std::optional<std::string> check_lowering(
    const interp::CompiledModule& compiled) {
  if (!compiled.has_lowering()) {
    return std::string(
        "module was compiled without the lowering stage; the bytecode "
        "binding cannot be verified");
  }
  return check_lowering(compiled.flat(), compiled.lowered(),
                        compiled.lower_options(), compiled.lowering_digest());
}

}  // namespace acctee::analysis
