#include <algorithm>

#include "analysis/opt/internal.hpp"
#include "common/error.hpp"
#include "wasm/opcode.hpp"

namespace acctee::analysis::opt::detail {

using interp::BlockOpCount;
using interp::FlatFunc;
using interp::FlatOp;
using interp::OptRegion;
using wasm::Op;

bool flat_op_ends_block(const FlatOp& op) {
  if (interp::is_region_enter(op)) return true;
  switch (op.op) {
    case Op::If:
    case Op::Br:
    case Op::BrIf:
    case Op::BrTable:
    case Op::Return:
    case Op::Call:
    case Op::CallIndirect:
    case Op::Unreachable:
    case Op::MemoryGrow:
      return true;
    default:
      return false;
  }
}

std::optional<uint64_t> increment_amount_at(const std::vector<FlatOp>& code,
                                            uint32_t pc,
                                            uint32_t counter_global) {
  if (pc + 4 > code.size()) return std::nullopt;
  const FlatOp& g0 = code[pc];
  const FlatOp& k = code[pc + 1];
  const FlatOp& add = code[pc + 2];
  const FlatOp& g1 = code[pc + 3];
  auto plain = [](const FlatOp& op, Op want) {
    return !op.synthetic && op.op == want;
  };
  if (plain(g0, Op::GlobalGet) && g0.a == counter_global &&
      plain(k, Op::I64Const) && plain(add, Op::I64Add) &&
      plain(g1, Op::GlobalSet) && g1.a == counter_global) {
    return k.b;
  }
  return std::nullopt;
}

std::vector<uint32_t> compute_stack_heights(const wasm::Module& module,
                                            const interp::FlatFunc& ff) {
  const uint32_t n = static_cast<uint32_t>(ff.code.size());
  std::vector<uint32_t> height(n, kUnknownHeight);
  if (n == 0) return height;
  std::vector<uint32_t> work;
  auto set = [&](uint32_t pc, uint32_t h) {
    if (pc >= n) return;
    if (height[pc] == kUnknownHeight) {
      height[pc] = h;
      work.push_back(pc);
    } else if (height[pc] != h) {
      throw Error("opt: inconsistent stack height in flat code");
    }
  };
  set(0, 0);
  while (!work.empty()) {
    const uint32_t pc = work.back();
    work.pop_back();
    const FlatOp& op = ff.code[pc];
    const uint32_t h = height[pc];
    if (interp::is_region_enter(op)) {
      set(pc + 1, h);
      set(op.target_pc, h);
      continue;
    }
    switch (op.op) {
      case Op::If:
        set(pc + 1, h - 1);
        set(op.target_pc, h - 1);
        break;
      case Op::Br:
        set(op.target_pc, op.unwind + op.arity);
        break;
      case Op::BrIf:
        set(pc + 1, h - 1);
        set(op.target_pc, op.unwind + op.arity);
        break;
      case Op::BrTable:
        for (const interp::BrTarget& t : ff.br_tables[op.a]) {
          set(t.pc, t.unwind + t.arity);
        }
        break;
      case Op::Return:
      case Op::Unreachable:
        break;
      case Op::Call: {
        const wasm::FuncType& ft = module.func_type(op.a);
        set(pc + 1, h - static_cast<uint32_t>(ft.params.size()) +
                        static_cast<uint32_t>(ft.results.size()));
        break;
      }
      case Op::CallIndirect: {
        const wasm::FuncType& ft = module.types.at(op.a);
        set(pc + 1, h - 1 - static_cast<uint32_t>(ft.params.size()) +
                        static_cast<uint32_t>(ft.results.size()));
        break;
      }
      case Op::Drop:
        set(pc + 1, h - 1);
        break;
      case Op::Select:
        set(pc + 1, h - 2);
        break;
      case Op::LocalGet:
      case Op::GlobalGet:
        set(pc + 1, h + 1);
        break;
      case Op::LocalSet:
      case Op::GlobalSet:
        set(pc + 1, h - 1);
        break;
      case Op::LocalTee:
      case Op::Block:  // structural markers retained by flatten; no effect
      case Op::Loop:
        set(pc + 1, h);
        break;
      default: {
        const wasm::OpInfo& info = wasm::op_info(op.op);
        const size_t colon = info.sig.find(':');
        if (colon == std::string_view::npos) {
          throw Error("opt: op without stack signature in flat code");
        }
        set(pc + 1, h - static_cast<uint32_t>(colon) +
                        static_cast<uint32_t>(info.sig.size() - colon - 1));
        break;
      }
    }
  }
  return height;
}

std::vector<FlatOp> coalesce_fast_body(
    const FlatFunc& callee, uint32_t nparams, uint32_t base,
    const std::vector<uint32_t>& increment_pcs) {
  std::vector<FlatOp> out;
  // Arguments sit on the caller's stack in push order; spill them into the
  // appended locals in reverse so local base+k receives argument k.
  for (uint32_t k = nparams; k-- > 0;) {
    FlatOp spill;
    spill.op = Op::LocalSet;
    spill.synthetic = true;
    spill.a = base + k;
    out.push_back(spill);
  }
  // The callee starts with its non-param locals zeroed.
  for (uint32_t j = nparams;
       j < static_cast<uint32_t>(callee.local_types.size()); ++j) {
    FlatOp zero;
    zero.synthetic = true;
    switch (callee.local_types[j]) {
      case wasm::ValType::I32:
        zero.op = Op::I32Const;
        break;
      case wasm::ValType::I64:
        zero.op = Op::I64Const;
        break;
      case wasm::ValType::F32:
        zero.op = Op::F32Const;
        break;
      case wasm::ValType::F64:
        zero.op = Op::F64Const;
        break;
    }
    zero.b = 0;
    out.push_back(zero);
    FlatOp st;
    st.op = Op::LocalSet;
    st.synthetic = true;
    st.a = base + j;
    out.push_back(st);
  }
  // The callee body minus its increments, locals shifted into the appended
  // slots. The final synthetic return is dropped: execution falls through
  // to the join with the callee's results on the stack.
  const uint32_t body_end = static_cast<uint32_t>(callee.code.size()) - 1;
  size_t next_inc = 0;
  for (uint32_t q = 0; q < body_end; ++q) {
    if (next_inc < increment_pcs.size() && q == increment_pcs[next_inc]) {
      q += 3;  // skip the 4-op window
      ++next_inc;
      continue;
    }
    FlatOp op = callee.code[q];
    op.synthetic = true;
    if (op.op == Op::LocalGet || op.op == Op::LocalSet ||
        op.op == Op::LocalTee) {
      op.a += base;
    }
    out.push_back(op);
  }
  return out;
}

FuncEditor::FuncEditor(const FlatFunc& src) : src_(src) {
  out_.type_index = src.type_index;
  out_.local_types = src.local_types;
  out_.num_params = src.num_params;
  out_.region_hist = src.region_hist;
  out_.code.reserve(src.code.size());
  new_pc_.assign(src.code.size(), UINT32_MAX);
  table_live_.assign(src.br_tables.size(), false);
}

void FuncEditor::copy(uint32_t old_pc) {
  const FlatOp& op = src_.code[old_pc];
  new_pc_[old_pc] = pos();
  if (op.op == Op::If || op.op == Op::Br || op.op == Op::BrIf ||
      interp::is_region_enter(op)) {
    pending_.push_back({pos()});
  }
  if (op.op == Op::BrTable) table_live_[op.a] = true;
  out_.code.push_back(op);
}

uint32_t FuncEditor::emit(FlatOp op) {
  const uint32_t at = pos();
  out_.code.push_back(op);
  return at;
}

uint32_t FuncEditor::emit_copy(uint32_t old_pc, bool synthetic,
                               uint32_t new_target) {
  FlatOp op = src_.code[old_pc];
  op.synthetic = synthetic;
  if (op.op == Op::If || op.op == Op::Br || op.op == Op::BrIf) {
    op.target_pc = new_target;
  }
  if (op.op == Op::BrTable) table_live_[op.a] = true;
  const uint32_t at = pos();
  out_.code.push_back(op);
  return at;
}

uint32_t FuncEditor::emit_with_old_target(FlatOp op, uint32_t old_target) {
  const uint32_t at = pos();
  op.target_pc = old_target;
  pending_.push_back({at});
  out_.code.push_back(op);
  return at;
}

void FuncEditor::map_old(uint32_t old_pc, uint32_t new_pc) {
  new_pc_[old_pc] = new_pc;
}

uint32_t FuncEditor::append_locals(const std::vector<wasm::ValType>& types) {
  const uint32_t base = static_cast<uint32_t>(out_.local_types.size());
  out_.local_types.insert(out_.local_types.end(), types.begin(), types.end());
  return base;
}

void FuncEditor::add_region(OptRegion region,
                            const std::vector<BlockOpCount>& hist) {
  region.hist_begin = static_cast<uint32_t>(out_.region_hist.size());
  out_.region_hist.insert(out_.region_hist.end(), hist.begin(), hist.end());
  region.hist_end = static_cast<uint32_t>(out_.region_hist.size());
  added_regions_.push_back(region);
}

interp::FlatFunc FuncEditor::finish() {
  auto remap = [&](uint32_t old_pc) {
    if (old_pc >= new_pc_.size() || new_pc_[old_pc] == UINT32_MAX) {
      throw Error("opt: edited function has a dangling branch target");
    }
    return new_pc_[old_pc];
  };
  // One past the last op of a contiguous copied range: the range's last op
  // definitely survived, so its successor position is new_pc[last] + 1.
  auto remap_end = [&](uint32_t old_end) {
    return old_end == 0 ? 0u : remap(old_end - 1) + 1;
  };
  for (const Pending& p : pending_) {
    out_.code[p.site].target_pc = remap(out_.code[p.site].target_pc);
  }
  out_.br_tables.resize(src_.br_tables.size());
  for (size_t t = 0; t < src_.br_tables.size(); ++t) {
    if (table_live_[t]) {
      out_.br_tables[t] = src_.br_tables[t];
      for (interp::BrTarget& e : out_.br_tables[t]) e.pc = remap(e.pc);
    } else {
      // The owning br_table was elided; keep the slot (op.a indices stay
      // stable) with deterministically zeroed entries.
      out_.br_tables[t].assign(src_.br_tables[t].size(), interp::BrTarget{});
    }
  }
  out_.regions.reserve(src_.regions.size() + added_regions_.size());
  for (OptRegion r : src_.regions) {
    r.enter_pc = remap(r.enter_pc);
    r.fast_begin = remap(r.fast_begin);
    r.fast_end = remap_end(r.fast_end);
    r.slow_begin = remap(r.slow_begin);
    r.slow_end = remap_end(r.slow_end);
    out_.regions.push_back(r);
  }
  out_.regions.insert(out_.regions.end(), added_regions_.begin(),
                      added_regions_.end());
  std::sort(out_.regions.begin(), out_.regions.end(),
            [](const OptRegion& a, const OptRegion& b) {
              return a.enter_pc < b.enter_pc;
            });
  for (uint32_t i = 0; i < out_.regions.size(); ++i) {
    FlatOp& enter = out_.code[out_.regions[i].enter_pc];
    if (!interp::is_region_enter(enter)) {
      throw Error("opt: region enter_pc does not hold a marker");
    }
    enter.a = i;
  }
  interp::compute_block_costs(out_);
  return std::move(out_);
}

}  // namespace acctee::analysis::opt::detail
