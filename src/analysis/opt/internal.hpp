// Shared internals of the optimisation passes (analysis/opt). The matchers
// here are the single source of truth for what a pass may transform AND what
// the verifier re-derives from a transformed module: the pass computes a
// region's charge from these facts, and verify_optimised_module recomputes
// the same facts from the slow copy and demands equality, so a region whose
// claims were not produced by this exact derivation cannot verify.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "instrument/weights.hpp"
#include "interp/flatten.hpp"
#include "wasm/ast.hpp"

namespace acctee::analysis::opt::detail {

/// Mirror of the interpreter's block-terminator set for flat ops (a fast
/// body may only contain ops that fall through, plus its own backedges).
bool flat_op_ends_block(const interp::FlatOp& op);

/// If `pc` starts a canonical 4-op counter increment
/// (`global.get C / i64.const n / i64.add / global.set C`, all real ops),
/// returns the raw i64 amount.
std::optional<uint64_t> increment_amount_at(
    const std::vector<interp::FlatOp>& code, uint32_t pc,
    uint32_t counter_global);

/// Per-pc operand-stack heights of a flat function, recovered by forward
/// propagation from entry (heights are unique in valid wasm). Unreachable
/// pcs keep the kUnknownHeight sentinel. Throws Error on an inconsistency,
/// which would mean the flat code is not the flattening of a valid module.
inline constexpr uint32_t kUnknownHeight = UINT32_MAX;
std::vector<uint32_t> compute_stack_heights(const wasm::Module& module,
                                            const interp::FlatFunc& ff);

/// Everything a fold region charges, re-derived from a code range alone.
struct FoldFacts {
  uint32_t lo = 0;  // loop head (first body pc)
  uint32_t hi = 0;  // one past the bottom br_if (the backedge)
  bool nest = false;
  uint32_t inner_lo = 0;  // nest only: inner loop head
  uint32_t inner_hi = 0;  // nest only: one past the inner backedge
  uint64_t trips = 0;     // total dynamic iterations (outer × inner for nests)
  uint64_t inner_trips = 0;            // nest only: per outer iteration
  std::vector<uint32_t> increment_pcs;  // start pc of every increment window
  uint64_t counter_amount = 0;          // total folded counter bump
  uint64_t instr_total = 0;             // real ops the loop executes
  uint64_t cycles_total = 0;            // summed base costs
  std::vector<interp::BlockOpCount> hist;  // per-opcode execution histogram
};

/// Matches a constant-trip bottom-tested counted loop (or, with
/// `allow_nest`, a perfect two-level counted nest) whose body starts at
/// `lo`, and derives its exact execution facts. `init_before` is the pc just
/// past the loop's preceding `loop` op — `lo` itself for a loop in place,
/// the region's enter_pc when matching a slow copy (the slow copy shares the
/// original preheader). Requirements, all re-derived from code:
///  * straight-line body: no block-ending op except the backedge br_if(s),
///  * the backedge tail is `<update> local.tee v / i32.const K / cmp / br_if`
///    or `local.get v / i32.const K / cmp / br_if` with exactly one const-
///    step induction write, cmp ∈ {lt_s, le_s, gt_s, ge_s, ne},
///  * the induction init `i32.const S / local.set v` reaches the loop head
///    unclobbered and nothing branches between init and head,
///  * trip count from (S, K, step, cmp) with do-while semantics, rejected
///    unless provably wrap-free in i32,
///  * at least one increment window in the body (increment-free counted
///    loops are already optimal under LoopBased instrumentation),
///  * no counter access outside increment windows,
///  * no branch from outside [lo, hi) into it (scanned over `ff`),
///  * totals fit the region's u32 histogram counts.
std::optional<FoldFacts> match_counted_loop(const interp::FlatFunc& ff,
                                            uint32_t lo, uint32_t init_before,
                                            uint32_t counter_global,
                                            bool allow_nest);

/// Everything a coalesce region charges, re-derived from the callee alone.
struct CoalesceFacts {
  uint32_t callee = 0;   // full function index-space index
  uint32_t nparams = 0;
  std::vector<wasm::ValType> callee_locals;  // params then locals
  std::vector<uint32_t> increment_pcs;       // in the callee's code
  uint64_t counter_amount = 0;  // the callee's summed increment amounts
  uint64_t instr_total = 0;     // the call op + the callee's real ops
  uint64_t cycles_total = 0;
  std::vector<interp::BlockOpCount> hist;
};

/// Matches a tiny straight-line leaf callee eligible for call coalescing:
/// every op before the final synthetic return is real, falls through, and
/// never touches the counter outside increment windows; at least one
/// increment; at most kMaxCoalesceOps real ops; no regions of its own.
inline constexpr uint32_t kMaxCoalesceOps = 24;
std::optional<CoalesceFacts> match_coalesce_callee(
    const wasm::Module& module, const std::vector<interp::FlatFunc>& flat,
    uint32_t callee, uint32_t counter_global);

/// The exact fast-body op sequence of a coalesce region: argument spills
/// into the appended caller locals (reverse order), typed zero-inits of the
/// callee's non-param locals, then the callee body minus the increment
/// windows at `increment_pcs`, local indices shifted by `base`. Both the
/// pass (emission) and the verifier (comparison) use this one generator.
std::vector<interp::FlatOp> coalesce_fast_body(
    const interp::FlatFunc& callee, uint32_t nparams, uint32_t base,
    const std::vector<uint32_t>& increment_pcs);

/// Rebuilds one FlatFunc under an old-pc → new-pc map, deferring branch
/// remaps until every op has its final position. Pre-existing regions are
/// carried over with their pcs remapped (a pass never edits inside one).
class FuncEditor {
 public:
  explicit FuncEditor(const interp::FlatFunc& src);

  uint32_t pos() const { return static_cast<uint32_t>(out_.code.size()); }
  const interp::FlatFunc& src() const { return src_; }

  /// Copies src op `old_pc` verbatim; its branch target (if any) is remapped
  /// through the old→new map at finish().
  void copy(uint32_t old_pc);
  /// Appends a new op whose target (if any) is already in new-pc space.
  uint32_t emit(interp::FlatOp op);
  /// Appends a copy of src op `old_pc` with `synthetic` forced and an
  /// explicit new-space target (region body copies use offset math).
  uint32_t emit_copy(uint32_t old_pc, bool synthetic,
                     uint32_t new_target = 0);
  /// Appends a copy of src op `old_pc` whose target is remapped through the
  /// old→new map at finish() (slow-copy exits jumping to the join).
  uint32_t emit_with_old_target(interp::FlatOp op, uint32_t old_target);
  /// Records where references to src pc `old_pc` should land.
  void map_old(uint32_t old_pc, uint32_t new_pc);
  /// Appends caller locals (coalesce spill slots); returns the base index.
  uint32_t append_locals(const std::vector<wasm::ValType>& types);
  /// Appends a region built by this pass (pcs already in new space, `a` of
  /// the marker fixed up at finish) with its charge histogram.
  void add_region(interp::OptRegion region,
                  const std::vector<interp::BlockOpCount>& hist);

  /// Remaps deferred targets, branch tables and carried-over regions, sorts
  /// regions, rewrites marker indices and recomputes block costs. Throws
  /// Error on a dangling target (a pass bug, never valid output).
  interp::FlatFunc finish();

 private:
  const interp::FlatFunc& src_;
  interp::FlatFunc out_;
  std::vector<uint32_t> new_pc_;  // UINT32_MAX = dropped
  struct Pending {
    uint32_t site;  // out_.code index whose target_pc holds an old pc
  };
  std::vector<Pending> pending_;
  std::vector<bool> table_live_;
  std::vector<interp::OptRegion> added_regions_;
};

/// Pass transforms (identity when nothing matches; each returns the input
/// unchanged — same bytes — for functions it does not touch).
std::vector<interp::FlatFunc> pass_dead_blocks(
    const wasm::Module& module, const std::vector<interp::FlatFunc>& flat,
    uint32_t* ops_elided);
std::vector<interp::FlatFunc> pass_coalesce_calls(
    const wasm::Module& module, const std::vector<interp::FlatFunc>& flat,
    uint32_t counter_global, const instrument::WeightTable& weights,
    const instrument::HostChargePolicy& host_charge, uint32_t* regions_added);
std::vector<interp::FlatFunc> pass_fold_loops(
    const wasm::Module& module, const std::vector<interp::FlatFunc>& flat,
    uint32_t counter_global, bool allow_nests, uint32_t* regions_added);

}  // namespace acctee::analysis::opt::detail
