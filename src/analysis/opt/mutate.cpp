// Optimised-flat mutation corpus (analysis/mutate.hpp, DESIGN.md §19).
//
// Every mutant is a transformed flat module the interpreter would happily
// execute: region metadata stays self-consistent where the attack needs it
// to (WrongTripFold rescales trips, totals and histograms together), code
// edits keep pc geometry intact (ops are swapped or removed through the
// same editor the passes use, never left dangling). What each mutant
// breaks is the *equivalence*: the billed wholesale charge no longer
// matches what the slow copy — and therefore the untransformed module —
// would pay, or the fast path no longer does the same work as the slow
// path. check_optimised_flat must reject all of them.
#include <string>

#include "analysis/mutate.hpp"
#include "analysis/opt/internal.hpp"
#include "analysis/opt/opt.hpp"
#include "common/error.hpp"

namespace acctee::analysis {

using interp::FlatFunc;
using interp::FlatOp;
using interp::OptRegion;
using interp::OptRegionKind;
using wasm::Op;

const char* to_string(OptMutationKind kind) {
  switch (kind) {
    case OptMutationKind::UnderpayCharge: return "underpay-charge";
    case OptMutationKind::WrongTripFold: return "wrong-trip-fold";
    case OptMutationKind::InlineMiscount: return "inline-miscount";
    case OptMutationKind::ElideLiveBlock: return "elide-live-block";
    case OptMutationKind::FastBodyOpSwap: return "fast-body-op-swap";
    case OptMutationKind::FastBodyCounterWrite:
      return "fast-body-counter-write";
    case OptMutationKind::RetargetGuard: return "retarget-guard";
  }
  return "?";
}

namespace {

bool in_any_region(const FlatFunc& ff, uint32_t pc) {
  for (const OptRegion& r : ff.regions) {
    if (pc >= r.enter_pc && pc < r.fast_end) return true;
    if (pc >= r.slow_begin && pc < r.slow_end) return true;
  }
  return false;
}

/// The op ElideLiveBlock removes: a plain reachable op outside every
/// region (the pipeline's dead-block pass already ran, so whatever is left
/// is live). UINT32_MAX if the function offers none.
uint32_t elide_victim(const FlatFunc& ff) {
  const uint32_t n = static_cast<uint32_t>(ff.code.size());
  for (uint32_t pc = 0; pc + 1 < n; ++pc) {
    const FlatOp& op = ff.code[pc];
    if (op.synthetic || opt::detail::flat_op_ends_block(op)) continue;
    if (in_any_region(ff, pc)) continue;
    return pc;
  }
  return UINT32_MAX;
}

struct Plan {
  std::vector<OptMutationSite> sites;
  void add(OptMutationKind kind, uint32_t function, uint32_t region,
           std::string what) {
    sites.push_back({kind, function, region,
                     std::string(analysis::to_string(kind)) + " func#" +
                         std::to_string(function) + " " + std::move(what)});
  }
};

Plan plan_sites(const std::vector<FlatFunc>& flat) {
  Plan plan;
  for (uint32_t df = 0; df < flat.size(); ++df) {
    const FlatFunc& ff = flat[df];
    for (uint32_t i = 0; i < ff.regions.size(); ++i) {
      const OptRegion& r = ff.regions[i];
      const std::string tag = "region#" + std::to_string(i);
      if (r.counter_amount > 0) {
        plan.add(OptMutationKind::UnderpayCharge, df, i, tag);
      }
      if (r.kind != OptRegionKind::CoalesceCall && r.trips > 1) {
        plan.add(OptMutationKind::WrongTripFold, df, i, tag);
      }
      if (r.kind == OptRegionKind::CoalesceCall && r.instr_total > 1) {
        plan.add(OptMutationKind::InlineMiscount, df, i, tag);
      }
      if (r.fast_end > r.fast_begin &&
          ff.code[r.fast_begin].op != Op::Nop) {
        plan.add(OptMutationKind::FastBodyOpSwap, df, i, tag);
        plan.add(OptMutationKind::FastBodyCounterWrite, df, i, tag);
      }
      plan.add(OptMutationKind::RetargetGuard, df, i, tag);
    }
    if (uint32_t victim = elide_victim(ff); victim != UINT32_MAX) {
      plan.add(OptMutationKind::ElideLiveBlock, df, 0,
               "pc#" + std::to_string(victim));
    }
  }
  return plan;
}

}  // namespace

std::vector<OptMutationSite> enumerate_opt_mutations(
    const std::vector<FlatFunc>& flat) {
  return plan_sites(flat).sites;
}

std::vector<FlatFunc> apply_opt_mutation(const std::vector<FlatFunc>& flat,
                                         size_t index) {
  Plan plan = plan_sites(flat);
  if (index >= plan.sites.size()) {
    throw Error("opt mutation index out of range (corpus has " +
                std::to_string(plan.sites.size()) + " sites)");
  }
  const OptMutationSite& site = plan.sites[index];
  std::vector<FlatFunc> out = flat;
  FlatFunc& ff = out[site.function];
  switch (site.kind) {
    case OptMutationKind::UnderpayCharge: {
      OptRegion& r = ff.regions[site.region];
      r.counter_amount -= (r.counter_amount + 1) / 2;
      break;
    }
    case OptMutationKind::WrongTripFold: {
      // Consistent rescale: the region claims half the iterations across
      // every total it carries, so no field contradicts another — only the
      // induction code in the slow copy can expose the lie.
      OptRegion& r = ff.regions[site.region];
      const uint64_t t = r.trips;
      const uint64_t half = t / 2;
      r.trips = half;
      r.instr_total = r.instr_total / t * half;
      r.cycles_total = r.cycles_total / t * half;
      r.counter_amount = r.counter_amount / t * half;
      for (uint32_t k = r.hist_begin; k < r.hist_end; ++k) {
        ff.region_hist[k].count = static_cast<uint32_t>(
            ff.region_hist[k].count / t * half);
      }
      break;
    }
    case OptMutationKind::InlineMiscount: {
      // Forget one callee op: the fused charge pays for one instruction
      // fewer than the real call executes.
      OptRegion& r = ff.regions[site.region];
      r.instr_total -= 1;
      for (uint32_t k = r.hist_end; k > r.hist_begin; --k) {
        interp::BlockOpCount& h = ff.region_hist[k - 1];
        if (h.count > 0) {
          r.cycles_total -= wasm::op_info(h.op).base_cost;
          h.count -= 1;
          break;
        }
      }
      break;
    }
    case OptMutationKind::ElideLiveBlock: {
      const uint32_t victim = elide_victim(ff);
      opt::detail::FuncEditor ed(ff);
      for (uint32_t pc = 0; pc < ff.code.size(); ++pc) {
        if (pc != victim) ed.copy(pc);
      }
      FlatFunc rebuilt = ed.finish();
      interp::compute_block_costs(rebuilt);
      ff = std::move(rebuilt);
      break;
    }
    case OptMutationKind::FastBodyOpSwap: {
      // The fast path silently skips work the slow copy performs: the op
      // becomes a no-op while the wholesale charge still bills it.
      OptRegion& r = ff.regions[site.region];
      FlatOp& op = ff.code[r.fast_begin];
      op = FlatOp{};
      op.op = Op::Nop;
      op.synthetic = true;
      break;
    }
    case OptMutationKind::FastBodyCounterWrite: {
      OptRegion& r = ff.regions[site.region];
      FlatOp& op = ff.code[r.fast_begin];
      op = FlatOp{};
      op.op = Op::GlobalGet;
      op.synthetic = true;
      op.a = r.counter_global;
      break;
    }
    case OptMutationKind::RetargetGuard: {
      // The guard jumps to the join instead of the slow copy: a serial or
      // checkpoint-crossing request skips the loop body entirely (and its
      // charge), diverging from the untransformed module.
      OptRegion& r = ff.regions[site.region];
      ff.code[r.enter_pc].target_pc = r.fast_end;
      break;
    }
  }
  return out;
}

}  // namespace acctee::analysis
