// Dead-block elision: removes flat code that no path from function entry
// can reach. The flattener already drops most dead *tree* code, but it
// conservatively resumes emission after every block end, so code such as a
// loop body after an unconditional inner `br`, or a trailing arm behind
// `unreachable`, survives flattening as statically dead flat ops. Those ops
// inflate the recovered cost vector of every block they share (they can
// never execute, so the workload never pays for them — but the §14 proof
// still has to carry their debt). Eliding them shrinks the evidence and the
// interpreter's block tables; the per-pass proof shows the recovered cost
// vector drops by exactly the elided weight and nothing reachable moved.
#include <algorithm>

#include "analysis/opt/internal.hpp"

namespace acctee::analysis::opt::detail {

using interp::FlatFunc;
using interp::FlatOp;
using wasm::Op;

namespace {

/// Op-granular reachability over the flat code, region-aware: a region
/// enter reaches both its fast body and its slow copy.
std::vector<bool> reachable_ops(const FlatFunc& ff) {
  const uint32_t n = static_cast<uint32_t>(ff.code.size());
  std::vector<bool> seen(n, false);
  std::vector<uint32_t> work;
  auto visit = [&](uint32_t pc) {
    if (pc < n && !seen[pc]) {
      seen[pc] = true;
      work.push_back(pc);
    }
  };
  visit(0);
  while (!work.empty()) {
    const uint32_t pc = work.back();
    work.pop_back();
    const FlatOp& op = ff.code[pc];
    if (interp::is_region_enter(op)) {
      visit(pc + 1);
      visit(op.target_pc);
      continue;
    }
    switch (op.op) {
      case Op::If:
      case Op::BrIf:
        visit(pc + 1);
        visit(op.target_pc);
        break;
      case Op::Br:
        visit(op.target_pc);
        break;
      case Op::BrTable:
        for (const interp::BrTarget& t : ff.br_tables[op.a]) visit(t.pc);
        break;
      case Op::Return:
      case Op::Unreachable:
        break;
      default:
        visit(pc + 1);
        break;
    }
  }
  return seen;
}

}  // namespace

std::vector<FlatFunc> pass_dead_blocks(const wasm::Module& module,
                                       const std::vector<FlatFunc>& flat,
                                       uint32_t* ops_elided) {
  (void)module;
  std::vector<FlatFunc> out;
  out.reserve(flat.size());
  uint32_t elided = 0;
  for (const FlatFunc& ff : flat) {
    std::vector<bool> keep = reachable_ops(ff);
    const uint32_t n = static_cast<uint32_t>(ff.code.size());
    // The code array must stay terminated by a synthetic return even when
    // it is unreachable (an infinite loop): block construction and the
    // flat invariants rely on it. When region slow copies have been
    // appended, the *body* terminator is the op just before the first slow
    // copy — keep that one too, so re-running the pass over already-
    // optimised code is the identity.
    if (n != 0) keep[n - 1] = true;
    uint32_t body_end = n;
    for (const interp::OptRegion& r : ff.regions) {
      body_end = std::min(body_end, r.slow_begin);
    }
    if (body_end != 0) keep[body_end - 1] = true;
    uint32_t dead = 0;
    for (uint32_t pc = 0; pc < n; ++pc) {
      if (!keep[pc]) ++dead;
    }
    if (dead == 0) {
      out.push_back(ff);
      continue;
    }
    FuncEditor ed(ff);
    for (uint32_t pc = 0; pc < n; ++pc) {
      if (keep[pc]) ed.copy(pc);
    }
    out.push_back(ed.finish());
    elided += dead;
  }
  if (ops_elided != nullptr) *ops_elided = elided;
  return out;
}

}  // namespace acctee::analysis::opt::detail
