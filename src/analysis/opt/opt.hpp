// Verified optimising middle-end (DESIGN.md §19).
//
// A deterministic pass pipeline over the flattened form that *transforms*
// instrumented code instead of only checking it, under a verify-after-each-
// pass discipline: every pass output must re-prove the §14 counter-
// equivalence property (via the collapsed view of its guarded fast-path
// regions) before the next pass runs, and the whole pipeline is re-run and
// byte-compared inside the AE before an optimised module is ever executed
// (the same verify-then-bind discipline §15 established for lowering).
//
// Passes (all gated by opt_level, all OFF at level 0):
//   1 dead-blocks     elide statically unreachable flat code; the recovered
//                     cost vector shrinks by exactly the elided weight
//   1 coalesce-calls  inline tiny straight-line leaf callees behind a
//                     guarded region: one fused charge replaces the call
//                     plus the callee's own increment
//   2 fold-loops      fold constant-trip single-block counted loops
//                     (br_if-bottom, any of lt_s/le_s/gt_s/ge_s/ne, step≠1)
//                     into one multiply-and-charge region
//   3 fold-loops      additionally folds perfect two-level counted nests
//
// The transforms never change *what* the workload pays — only where the
// accounting executes: ExecStats, checkpoint firings and signed ledger
// bytes are bit-identical between opt_level=0 and opt_level=max (the
// region guard falls back to the verbatim slow copy whenever wholesale
// charging could be observed). See interp::OptRegion for the runtime
// contract.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "crypto/sha256.hpp"
#include "instrument/weights.hpp"
#include "interp/compiled_module.hpp"
#include "interp/flatten.hpp"
#include "wasm/ast.hpp"

namespace acctee::analysis::opt {

/// Highest meaningful Config::opt_level ("max"). Levels above clamp.
inline constexpr uint32_t kMaxOptLevel = 3;

/// Per-pass evidence diff: what the pass did and the proof that it kept the
/// module equivalent. The digests are what evidence payload v4 binds.
struct PassReport {
  std::string name;
  uint32_t min_level = 0;      // smallest opt_level that enables the pass
  uint32_t blocks_before = 0;  // basic blocks, summed over functions
  uint32_t blocks_after = 0;
  uint32_t increments_before = 0;  // hot-path increment sites (slow copies
  uint32_t increments_after = 0;   // excluded)
  uint32_t regions_added = 0;
  uint32_t ops_elided = 0;
  // Recovered cost vector of the transformed module (§14 proof re-run on
  // the collapsed view) and canonical digest of the transformed flat code.
  crypto::Digest cost_vector_digest{};
  crypto::Digest flat_digest{};
  uint64_t proof_micros = 0;  // wall time of the per-pass equivalence proof

  friend bool operator==(const PassReport&, const PassReport&) = default;
};

/// The pass list with its per-pass proofs — the IE computes one, claims it
/// in evidence v4, and the AE re-derives its own and compares.
struct OptTrail {
  uint32_t opt_level = 0;
  std::vector<PassReport> passes;
};

struct PipelineResult {
  std::vector<interp::FlatFunc> flat;
  OptTrail trail;
};

/// Runs the pass pipeline for `opt_level` over `baseline` (the canonical
/// flattening of the instrumented module). Deterministic: same inputs, same
/// bytes. Every pass output is re-proved (§14 on the collapsed view plus
/// the per-region semantic re-derivation); a failed proof throws Error —
/// a pass must never ship unproven output (fail-closed).
PipelineResult run_pipeline(const wasm::Module& module,
                            const std::vector<interp::FlatFunc>& baseline,
                            uint32_t counter_global, uint32_t opt_level,
                            const instrument::WeightTable& weights,
                            const instrument::HostChargePolicy& host_charge);

/// Convenience for execution paths: runs the pipeline over an already
/// compiled (validated) module and returns a new artifact that executes the
/// optimised flat form, with the baseline retained for the §14 proof.
/// `trail_out` (optional) receives the per-pass evidence.
interp::CompiledModulePtr optimise_compiled(
    const interp::CompiledModulePtr& base, uint32_t counter_global,
    uint32_t opt_level, const instrument::WeightTable& weights,
    const instrument::HostChargePolicy& host_charge,
    OptTrail* trail_out = nullptr);

/// Verdict of the optimised-module proof (the §14 re-run on the transformed
/// code): region structure + per-region semantic re-derivation from the
/// slow copies + counter dataflow over the collapsed view.
struct OptVerifyResult {
  bool ok = false;
  std::string error;
  uint32_t regions = 0;  // regions checked across all functions
  // Recovered per-function cost vector of the transformed module and its
  // digest (analysis::cost_vector_digest encoding).
  std::vector<uint64_t> cost_vector;
  crypto::Digest cost_vector_digest{};
};

/// Proves that a transformed flat module still bills exactly: every region
/// is structurally sound (single entry, no external edges into fast or slow
/// ranges), every region's charge equals the re-derived cost of its slow
/// copy (trip counts, histograms and counter amounts recomputed — never
/// trusted), every fast body is the slow body minus its increments, and the
/// §14 wrapping-debt proof holds over the collapsed view. Nothing about the
/// transform is taken on faith, so this also rejects hostile "optimised"
/// modules (the mutation corpus in analysis/mutate.hpp).
OptVerifyResult verify_optimised_module(
    const wasm::Module& module, const std::vector<interp::FlatFunc>& flat,
    uint32_t counter_global, const instrument::WeightTable& weights,
    const instrument::HostChargePolicy& host_charge);

/// One-call acceptance gate shared by the AE, the CLI and the mutation
/// harness: the proof must pass AND the recovered cost-vector digest must
/// equal the claimed one. Any mutation of code, regions or claims flips
/// this to false.
bool check_optimised_flat(const wasm::Module& module,
                          const std::vector<interp::FlatFunc>& flat,
                          uint32_t counter_global,
                          const instrument::WeightTable& weights,
                          const instrument::HostChargePolicy& host_charge,
                          const crypto::Digest& claimed_cost_digest);

/// Canonical digest of a flat module's code/tables/regions (domain
/// "acctee.optflat.v1"). Used for the per-pass trail and determinism tests.
crypto::Digest flat_digest(const std::vector<interp::FlatFunc>& flat);

/// Structural byte-equality of two flat modules (code, tables, blocks,
/// regions) — the AE's re-derive-and-compare check.
bool flat_equal(const std::vector<interp::FlatFunc>& a,
                const std::vector<interp::FlatFunc>& b);

/// The collapsed view of a transformed module: region fast bodies become
/// unreachable scaffolding (their last op a synthetic trap sink) and every
/// region enter becomes an unconditional jump to its slow copy. The §14
/// verifier runs on this view unchanged — slow copies are verbatim baseline
/// code, so the wrapping-debt proof applies as-is.
std::vector<interp::FlatFunc> collapsed_view(
    const std::vector<interp::FlatFunc>& flat);

/// Hot-path increment sites: 4-op counter-increment windows outside region
/// slow copies. Reported per pass (before → after).
uint32_t count_hot_increments(const std::vector<interp::FlatFunc>& flat,
                              uint32_t counter_global);

}  // namespace acctee::analysis::opt
