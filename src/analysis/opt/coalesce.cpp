// Counter coalescing across tiny leaf calls: a call to a straight-line
// leaf callee (no control flow, no further calls) is inlined behind a
// guarded region — argument spills into appended caller locals, zero-inits,
// then the callee body minus its own counter increments — and the region
// charges the call op, the callee's ops and the callee's increments as one
// fused update. The verbatim `call` survives as the slow copy, taken
// whenever wholesale charging could be observed (checkpoint, limit, or the
// call-depth guard: the fast path pushes no frame, so the region refuses to
// run fast where the real call would trap on depth).
#include <limits>
#include <utility>

#include "analysis/cfg.hpp"
#include "analysis/counter_flow.hpp"
#include "analysis/dominators.hpp"
#include "analysis/loops.hpp"
#include "analysis/opt/internal.hpp"
#include "wasm/opcode.hpp"

namespace acctee::analysis::opt::detail {

using interp::FlatFunc;
using interp::FlatOp;
using interp::OptRegion;
using interp::OptRegionKind;
using wasm::Op;

namespace {

void add_hist(std::vector<interp::BlockOpCount>& hist, Op op,
              uint64_t count) {
  for (interp::BlockOpCount& h : hist) {
    if (h.op == op) {
      h.count += static_cast<uint32_t>(count);
      return;
    }
  }
  hist.push_back({op, static_cast<uint32_t>(count)});
}

}  // namespace

std::optional<CoalesceFacts> match_coalesce_callee(
    const wasm::Module& module, const std::vector<FlatFunc>& flat,
    uint32_t callee, uint32_t counter_global) {
  const uint32_t num_imports = static_cast<uint32_t>(module.imports.size());
  if (callee < num_imports) return std::nullopt;
  const uint32_t dc = callee - num_imports;
  if (dc >= flat.size()) return std::nullopt;
  const FlatFunc& cf = flat[dc];
  if (!cf.regions.empty()) return std::nullopt;
  if (cf.code.empty()) return std::nullopt;
  const uint32_t body_end = static_cast<uint32_t>(cf.code.size()) - 1;
  const FlatOp& ret = cf.code[body_end];
  if (!(ret.synthetic && ret.op == Op::Return)) return std::nullopt;
  if (body_end == 0 || body_end > kMaxCoalesceOps) return std::nullopt;

  CoalesceFacts facts;
  facts.callee = callee;
  facts.nparams = cf.num_params;
  facts.callee_locals = cf.local_types;
  uint32_t q = 0;
  while (q < body_end) {
    if (std::optional<uint64_t> amount =
            increment_amount_at(cf.code, q, counter_global)) {
      if (q + 4 > body_end) return std::nullopt;  // straddles the return
      facts.increment_pcs.push_back(q);
      facts.counter_amount += *amount;
      q += 4;
      continue;
    }
    const FlatOp& op = cf.code[q];
    if (op.synthetic || flat_op_ends_block(op)) return std::nullopt;
    if ((op.op == Op::GlobalGet || op.op == Op::GlobalSet) &&
        op.a == counter_global) {
      return std::nullopt;
    }
    ++q;
  }
  if (facts.increment_pcs.empty()) return std::nullopt;
  // Charge: the call op itself plus every real callee op (increments
  // included — the slow path and the untransformed module both pay them).
  facts.instr_total = 1 + body_end;
  facts.cycles_total = wasm::op_info(Op::Call).base_cost;
  add_hist(facts.hist, Op::Call, 1);
  for (uint32_t pc = 0; pc < body_end; ++pc) {
    facts.cycles_total += wasm::op_info(cf.code[pc].op).base_cost;
    add_hist(facts.hist, cf.code[pc].op, 1);
  }
  return facts;
}

namespace {

/// Pc ranges the pass must leave byte-exact: the body and preheader of
/// every §14-recognised counted-loop region (hoisted or const-trip). The
/// recogniser is positional — a region marker inside one of these would
/// break recognition, orphan the hoist scaffolding and fail the proof.
std::vector<std::pair<uint32_t, uint32_t>> protected_ranges(
    const FlatFunc& ff, uint32_t counter_global,
    const instrument::WeightTable& weights,
    const instrument::HostChargePolicy& host_charge) {
  std::vector<std::pair<uint32_t, uint32_t>> out;
  const analysis::Cfg cfg = analysis::build_cfg(ff);
  const std::vector<uint32_t> idom = analysis::immediate_dominators(cfg);
  const analysis::Classification cls =
      analysis::classify_ops(ff, cfg, counter_global);
  for (const analysis::CountedRegion& r : analysis::find_counted_regions(
           ff, cfg, idom, cls, counter_global, weights, host_charge)) {
    const analysis::BasicBlock& body = cfg.blocks[r.body_block];
    out.emplace_back(body.begin, body.end);
    const analysis::BasicBlock& pre = cfg.blocks[r.preheader_block];
    out.emplace_back(pre.begin, pre.end);
  }
  return out;
}

}  // namespace

std::vector<FlatFunc> pass_coalesce_calls(
    const wasm::Module& module, const std::vector<FlatFunc>& flat,
    uint32_t counter_global, const instrument::WeightTable& weights,
    const instrument::HostChargePolicy& host_charge,
    uint32_t* regions_added) {
  constexpr uint32_t kMaxSitesPerFunction = 16;
  const uint32_t num_imports = static_cast<uint32_t>(module.imports.size());
  std::vector<FlatFunc> out;
  out.reserve(flat.size());
  uint32_t added = 0;
  for (uint32_t df = 0; df < flat.size(); ++df) {
    const FlatFunc& ff = flat[df];
    const uint32_t n = static_cast<uint32_t>(ff.code.size());
    auto inside_existing = [&](uint32_t pc) {
      for (const OptRegion& r : ff.regions) {
        if (pc >= r.enter_pc && pc < r.fast_end) return true;
        if (pc >= r.slow_begin && pc < r.slow_end) return true;
      }
      return false;
    };
    struct Site {
      uint32_t call_pc;
      CoalesceFacts facts;
    };
    std::vector<Site> sites;
    std::vector<uint32_t> heights;
    std::vector<std::pair<uint32_t, uint32_t>> keep_exact;
    bool keep_exact_known = false;
    auto inside_protected = [&](uint32_t pc) {
      if (!keep_exact_known) {
        keep_exact =
            protected_ranges(ff, counter_global, weights, host_charge);
        keep_exact_known = true;
      }
      for (const auto& [b, e] : keep_exact) {
        if (pc >= b && pc < e) return true;
      }
      return false;
    };
    for (uint32_t pc = 0; pc < n && sites.size() < kMaxSitesPerFunction;
         ++pc) {
      const FlatOp& op = ff.code[pc];
      if (op.synthetic || op.op != Op::Call) continue;
      if (op.a == df + num_imports) continue;  // a leaf never calls itself
      if (inside_existing(pc)) continue;
      if (inside_protected(pc)) continue;
      std::optional<CoalesceFacts> facts =
          match_coalesce_callee(module, flat, op.a, counter_global);
      if (!facts) continue;
      if (heights.empty()) heights = compute_stack_heights(module, ff);
      if (heights[pc] == kUnknownHeight ||
          heights[pc + 1] == kUnknownHeight) {
        continue;
      }
      sites.push_back({pc, std::move(*facts)});
    }
    if (sites.empty()) {
      out.push_back(ff);
      continue;
    }
    FuncEditor ed(ff);
    struct Placed {
      const Site* site;
      uint32_t enter_pc;
      uint32_t fast_begin;
      uint32_t fast_end;
    };
    std::vector<Placed> placed;
    size_t next_site = 0;
    for (uint32_t pc = 0; pc < n; ++pc) {
      if (next_site < sites.size() && pc == sites[next_site].call_pc) {
        const Site& s = sites[next_site];
        const FlatFunc& cf = flat[s.facts.callee - num_imports];
        const uint32_t base = ed.append_locals(cf.local_types);
        Placed pl;
        pl.site = &s;
        FlatOp enter;
        enter.op = Op::Nop;
        enter.synthetic = true;
        enter.b = interp::kRegionEnterTag;
        pl.enter_pc = ed.emit(enter);
        ed.map_old(pc, pl.enter_pc);
        pl.fast_begin = ed.pos();
        for (const FlatOp& op : coalesce_fast_body(
                 cf, cf.num_params, base, s.facts.increment_pcs)) {
          ed.emit(op);
        }
        pl.fast_end = ed.pos();
        placed.push_back(pl);
        ++next_site;
        continue;  // the join is the op after the call, copied next
      }
      ed.copy(pc);
    }
    for (const Placed& pl : placed) {
      const Site& s = *pl.site;
      const uint32_t slow_begin = ed.pos();
      ed.emit_copy(s.call_pc, /*synthetic=*/false);
      FlatOp exit;
      exit.op = Op::Br;
      exit.synthetic = true;
      exit.arity = 0;
      exit.unwind = heights[s.call_pc + 1];
      ed.emit_with_old_target(exit, s.call_pc + 1);
      const uint32_t slow_end = ed.pos();

      OptRegion region;
      region.kind = OptRegionKind::CoalesceCall;
      region.enter_pc = pl.enter_pc;
      region.fast_begin = pl.fast_begin;
      region.fast_end = pl.fast_end;
      region.slow_begin = slow_begin;
      region.slow_end = slow_end;
      region.callee = s.facts.callee;
      region.trips = 1;
      region.instr_total = s.facts.instr_total;
      region.cycles_total = s.facts.cycles_total;
      region.counter_amount = s.facts.counter_amount;
      region.counter_global = counter_global;
      region.calls_folded = 1;
      region.frames_needed = 1;
      ed.add_region(region, s.facts.hist);
      ++added;
    }
    FlatFunc rebuilt = ed.finish();
    for (const OptRegion& r : rebuilt.regions) {
      rebuilt.code[r.enter_pc].target_pc = r.slow_begin;
    }
    interp::compute_block_costs(rebuilt);
    out.push_back(std::move(rebuilt));
  }
  if (regions_added != nullptr) *regions_added = added;
  return out;
}

}  // namespace acctee::analysis::opt::detail
