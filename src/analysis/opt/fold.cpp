// Constant-trip loop folding, generalised beyond the instrumenter's own
// LoopBased pattern: bottom-tested single-block counted loops under any of
// lt_s / le_s / gt_s / ge_s / ne, with any non-zero constant step, either
// `local.tee` or separate-update tails, and (at max level) perfect
// two-level counted nests folded as one region. Only loops that still carry
// in-body increments are folded — FlowBased instrumentation leaves one per
// body block, and each folded region replaces trips × (body + increment)
// per-op work with a single wholesale charge guarded by the slow copy.
// Loops the IE already optimised (hoisted / const-trip, which are
// increment-free by construction) are deliberately not matched: folding
// them would buy nothing and the §14 loop-region recogniser depends on
// their exact shape.
//
// Every quantity a region charges — trip count, histogram, counter bump —
// is derived here from the code alone, and verify_optimised_module runs
// this same matcher against the region's slow copy, so the pass cannot
// disagree with the proof.
#include <algorithm>
#include <limits>

#include "analysis/opt/internal.hpp"
#include "wasm/opcode.hpp"

namespace acctee::analysis::opt::detail {

using interp::FlatFunc;
using interp::FlatOp;
using interp::OptRegion;
using interp::OptRegionKind;
using wasm::Op;

namespace {

bool plain(const FlatOp& op, Op want) {
  return !op.synthetic && op.op == want;
}

bool writes_local(const FlatOp& op, uint32_t local) {
  return !op.synthetic &&
         (op.op == Op::LocalSet || op.op == Op::LocalTee) && op.a == local;
}

int32_t const_i32(const FlatOp& op) {
  return static_cast<int32_t>(static_cast<uint32_t>(op.b));
}

/// `local.get v / i32.const k / i32.add|sub / <write v>` (or the commuted
/// const-first add) ending at `write_pc`; returns the signed step.
std::optional<int32_t> match_induction_update(const std::vector<FlatOp>& code,
                                              uint32_t first_pc,
                                              uint32_t write_pc,
                                              uint32_t var) {
  if (write_pc < first_pc + 3) return std::nullopt;
  if (!writes_local(code[write_pc], var)) return std::nullopt;
  const FlatOp& o0 = code[write_pc - 3];
  const FlatOp& o1 = code[write_pc - 2];
  const FlatOp& o2 = code[write_pc - 1];
  if (plain(o0, Op::LocalGet) && o0.a == var && plain(o1, Op::I32Const) &&
      (plain(o2, Op::I32Add) || plain(o2, Op::I32Sub))) {
    int32_t k = const_i32(o1);
    return o2.op == Op::I32Sub ? -k : k;
  }
  if (plain(o0, Op::I32Const) && plain(o1, Op::LocalGet) && o1.a == var &&
      plain(o2, Op::I32Add)) {
    return const_i32(o0);
  }
  return std::nullopt;
}

/// Exact do-while trip count of `for (v = start; cmp(v, limit); v += step)`
/// entered unconditionally (body runs at least once, test at the bottom).
/// Rejected unless the whole induction sequence is provably wrap-free in
/// i32, so the i64 derivation below equals the module's i32 arithmetic.
std::optional<uint64_t> dowhile_trips(int32_t start, int32_t limit,
                                      int32_t step, Op cmp) {
  const int64_t s = start;
  const int64_t lim = limit;
  const int64_t st = step;
  if (st == 0) return std::nullopt;
  // ceil/floor of a/b for b > 0, exact for any sign of a.
  auto cdiv = [](int64_t a, int64_t b) {
    return a > 0 ? (a + b - 1) / b : -((-a) / b);
  };
  auto fdiv = [](int64_t a, int64_t b) {
    return a >= 0 ? a / b : -((-a + b - 1) / b);
  };
  int64_t n = 0;
  switch (cmp) {
    case Op::I32LtS:  // continue while v < limit: stop at first v >= limit
      if (st < 0) return std::nullopt;  // decreasing: never stops before wrap
      n = cdiv(lim - s, st);
      break;
    case Op::I32LeS:  // stop at first v > limit
      if (st < 0) return std::nullopt;
      n = fdiv(lim - s, st) + 1;
      break;
    case Op::I32GtS:  // stop at first v <= limit
      if (st > 0) return std::nullopt;
      n = cdiv(s - lim, -st);
      break;
    case Op::I32GeS:  // stop at first v < limit
      if (st > 0) return std::nullopt;
      n = fdiv(s - lim, -st) + 1;
      break;
    case Op::I32Ne: {  // stop at first v == limit: requires exact division
      const int64_t d = lim - s;
      if (d == 0 || d % st != 0) return std::nullopt;
      n = d / st;
      if (n < 1) return std::nullopt;
      break;
    }
    default:
      return std::nullopt;
  }
  if (n < 1) n = 1;  // bottom-tested: the body always runs once
  // The induction values are monotone, so wrap-freedom of the endpoints
  // covers every intermediate value.
  const int64_t last = s + n * st;
  if (last > std::numeric_limits<int32_t>::max() ||
      last < std::numeric_limits<int32_t>::min()) {
    return std::nullopt;
  }
  if (n > (int64_t{1} << 30)) return std::nullopt;
  return static_cast<uint64_t>(n);
}

/// The bottom-test tail of a loop scope [s_lo, s_hi): `... <read v> /
/// i32.const K / cmp / br_if`, with exactly one const-step write to v in
/// the scope (pcs in [skip_lo, skip_hi) belong to an inner scope and are
/// excluded). The instrumenter flushes a counter window between the
/// comparison and the br_if (the taken edge leaves the block), so one
/// increment window there is skipped. Returns (var, step, limit, cmp).
struct ScopeTail {
  uint32_t var = 0;
  int32_t step = 0;
  int32_t limit = 0;
  Op cmp = Op::Nop;
  uint32_t write_pc = 0;  // the single induction write in the scope
};

std::optional<ScopeTail> match_scope_tail(const std::vector<FlatOp>& code,
                                          uint32_t s_lo, uint32_t s_hi,
                                          uint32_t skip_lo, uint32_t skip_hi,
                                          uint32_t counter_global) {
  if (s_hi < s_lo + 4) return std::nullopt;
  uint32_t t = s_hi - 1;  // the br_if; the comparison triple ends before t
  if (t >= s_lo + 4 && increment_amount_at(code, t - 4, counter_global)) {
    t -= 4;
  }
  if (t < s_lo + 3) return std::nullopt;
  const FlatOp& read = code[t - 3];
  const FlatOp& limc = code[t - 2];
  const FlatOp& cmp = code[t - 1];
  if (!plain(limc, Op::I32Const)) return std::nullopt;
  if (!(plain(cmp, Op::I32LtS) || plain(cmp, Op::I32LeS) ||
        plain(cmp, Op::I32GtS) || plain(cmp, Op::I32GeS) ||
        plain(cmp, Op::I32Ne))) {
    return std::nullopt;
  }
  ScopeTail tail;
  tail.limit = const_i32(limc);
  tail.cmp = cmp.op;
  uint32_t write_pc = UINT32_MAX;
  uint32_t writes = 0;
  if (plain(read, Op::LocalTee)) {
    tail.var = read.a;
    write_pc = t - 3;
  } else if (plain(read, Op::LocalGet)) {
    tail.var = read.a;
  } else {
    return std::nullopt;
  }
  for (uint32_t pc = s_lo; pc < s_hi; ++pc) {
    if (pc >= skip_lo && pc < skip_hi) continue;
    if (writes_local(code[pc], tail.var)) {
      ++writes;
      if (read.op == Op::LocalGet) write_pc = pc;
    }
  }
  // The inner scope must never touch the outer induction variable.
  for (uint32_t pc = skip_lo; pc < skip_hi; ++pc) {
    if (writes_local(code[pc], tail.var)) return std::nullopt;
  }
  if (writes != 1 || write_pc == UINT32_MAX) return std::nullopt;
  if (read.op == Op::LocalGet && write_pc >= t - 3) return std::nullopt;
  std::optional<int32_t> step =
      match_induction_update(code, s_lo, write_pc, tail.var);
  if (!step || *step == 0) return std::nullopt;
  tail.step = *step;
  tail.write_pc = write_pc;
  return tail;
}

/// The induction init `i32.const START / local.set v` reaching the loop op
/// at `loop_op_pc` unclobbered. Scans backward for the latest write to v;
/// rejects if the linear path between init and loop head is interrupted
/// (an unconditional transfer) or enterable from elsewhere (a branch
/// target strictly between them).
std::optional<int32_t> find_init(const FlatFunc& ff, uint32_t var,
                                 uint32_t loop_op_pc) {
  const std::vector<FlatOp>& code = ff.code;
  if (!plain(code[loop_op_pc], Op::Loop)) return std::nullopt;
  uint32_t init_pc = UINT32_MAX;
  const uint32_t floor_pc = loop_op_pc > 64 ? loop_op_pc - 64 : 0;
  for (uint32_t q = loop_op_pc; q-- > floor_pc;) {
    const FlatOp& op = code[q];
    if (op.op == Op::Br || op.op == Op::BrTable || op.op == Op::Return ||
        op.op == Op::Unreachable) {
      return std::nullopt;  // the head is not reached from here
    }
    if (writes_local(op, var)) {
      if (q == 0 || !plain(op, Op::LocalSet) ||
          !plain(code[q - 1], Op::I32Const)) {
        return std::nullopt;
      }
      init_pc = q;
      break;
    }
  }
  if (init_pc == UINT32_MAX) return std::nullopt;
  // Nothing may branch into (init_pc, loop_op_pc]: every path reaching the
  // loop head must have executed the init.
  const uint32_t n = static_cast<uint32_t>(code.size());
  for (uint32_t p = 0; p < n; ++p) {
    const FlatOp& op = code[p];
    if (op.op == Op::If || op.op == Op::Br || op.op == Op::BrIf ||
        interp::is_region_enter(op)) {
      if (op.target_pc > init_pc && op.target_pc <= loop_op_pc) {
        return std::nullopt;
      }
    }
    if (op.op == Op::BrTable) {
      for (const interp::BrTarget& t : ff.br_tables[op.a]) {
        if (t.pc > init_pc && t.pc <= loop_op_pc) return std::nullopt;
      }
    }
  }
  return const_i32(code[init_pc - 1]);
}

void add_hist(std::vector<interp::BlockOpCount>& hist, Op op,
              uint64_t count) {
  for (interp::BlockOpCount& h : hist) {
    if (h.op == op) {
      h.count += static_cast<uint32_t>(count);
      return;
    }
  }
  hist.push_back({op, static_cast<uint32_t>(count)});
}

}  // namespace

std::optional<FoldFacts> match_counted_loop(const FlatFunc& ff, uint32_t lo,
                                            uint32_t init_before,
                                            uint32_t counter_global,
                                            bool allow_nest) {
  const std::vector<FlatOp>& code = ff.code;
  const uint32_t n = static_cast<uint32_t>(code.size());
  if (lo == 0 || lo >= n || init_before == 0 || init_before > n) {
    return std::nullopt;
  }
  FoldFacts facts;
  facts.lo = lo;
  // Walk the body: straight-line real ops, increment windows, and at most
  // two br_if ops — an optional inner backedge and the final outer one.
  constexpr uint32_t kMaxBodyOps = 512;
  uint32_t q = lo;
  bool have_inner = false;
  bool closed = false;
  while (q < n && q - lo < kMaxBodyOps) {
    if (std::optional<uint64_t> amount =
            increment_amount_at(code, q, counter_global)) {
      (void)amount;
      facts.increment_pcs.push_back(q);
      q += 4;
      continue;
    }
    const FlatOp& op = code[q];
    if (op.synthetic) return std::nullopt;
    if ((op.op == Op::GlobalGet || op.op == Op::GlobalSet) &&
        op.a == counter_global) {
      return std::nullopt;  // counter access outside a recognised window
    }
    if (op.op == Op::BrIf) {
      const uint32_t t = op.target_pc;
      if (t == lo) {
        facts.hi = q + 1;
        closed = true;
        break;
      }
      if (allow_nest && !have_inner && t > lo && t <= q) {
        have_inner = true;
        facts.nest = true;
        facts.inner_lo = t;
        facts.inner_hi = q + 1;
        ++q;
        continue;
      }
      return std::nullopt;
    }
    if (flat_op_ends_block(op)) return std::nullopt;
    ++q;
  }
  if (!closed) return std::nullopt;
  const uint32_t hi = facts.hi;
  // Increment windows must not straddle a loop head (a §14-recognisable
  // window never does: heads are block boundaries).
  for (uint32_t w : facts.increment_pcs) {
    for (uint32_t head : {lo, facts.inner_lo}) {
      if (head > w && head < w + 4) return std::nullopt;
    }
  }
  if (facts.nest && facts.inner_hi > hi - 4) return std::nullopt;
  // Folding an increment-free loop buys nothing (the IE's LoopBased pass
  // already hoisted or folded its accounting); skip it.
  if (facts.increment_pcs.empty()) return std::nullopt;
  // Nothing outside [lo, hi) may branch into it; the only permitted
  // external reference is a region enter targeting lo (the verify path,
  // where lo is the slow copy and init_before the enter marker).
  const uint32_t exempt = init_before != lo ? init_before : UINT32_MAX;
  for (uint32_t p = 0; p < n; ++p) {
    if (p >= lo && p < hi) continue;
    const FlatOp& op = code[p];
    uint32_t t = UINT32_MAX;
    if (op.op == Op::If || op.op == Op::Br || op.op == Op::BrIf ||
        interp::is_region_enter(op)) {
      t = op.target_pc;
    }
    if (t >= lo && t < hi && p != exempt) return std::nullopt;
    if (op.op == Op::BrTable) {
      for (const interp::BrTarget& e : ff.br_tables[op.a]) {
        if (e.pc >= lo && e.pc < hi) return std::nullopt;
      }
    }
  }
  // Outer tail, induction and trip count.
  std::optional<ScopeTail> outer =
      match_scope_tail(code, lo, hi, facts.inner_lo,
                       facts.nest ? facts.inner_hi : 0, counter_global);
  if (!outer) return std::nullopt;
  // The outer update window must lie wholly outside the inner scope, or
  // its ops would execute per inner iteration and break the derivation.
  if (facts.nest && outer->write_pc >= facts.inner_lo &&
      outer->write_pc - 3 < facts.inner_hi) {
    return std::nullopt;
  }
  std::optional<int32_t> outer_start =
      find_init(ff, outer->var, init_before - 1);
  if (!outer_start) return std::nullopt;
  std::optional<uint64_t> outer_trips =
      dowhile_trips(*outer_start, outer->limit, outer->step, outer->cmp);
  if (!outer_trips) return std::nullopt;
  facts.trips = *outer_trips;
  uint64_t inner_trips = 0;
  if (facts.nest) {
    std::optional<ScopeTail> inner = match_scope_tail(
        code, facts.inner_lo, facts.inner_hi, 0, 0, counter_global);
    if (!inner || inner->var == outer->var) return std::nullopt;
    // The inner induction must be re-initialised inside the outer body —
    // otherwise its trip count would differ across outer iterations.
    if (facts.inner_lo < lo + 1) return std::nullopt;
    std::optional<int32_t> inner_start =
        find_init(ff, inner->var, facts.inner_lo - 1);
    if (!inner_start) return std::nullopt;
    // find_init scanned backward from the inner loop op; the init it found
    // must itself lie inside the outer body.
    // (The backward window is 64 ops; inner_lo - lo bounds it anyway.)
    std::optional<uint64_t> t =
        dowhile_trips(*inner_start, inner->limit, inner->step, inner->cmp);
    if (!t) return std::nullopt;
    inner_trips = *t;
    // Exactly two writes to the inner var in the whole range: init+update.
    uint32_t inner_writes = 0;
    for (uint32_t pc = lo; pc < hi; ++pc) {
      if (writes_local(code[pc], inner->var)) ++inner_writes;
    }
    if (inner_writes != 2) return std::nullopt;
    facts.inner_trips = inner_trips;
    facts.trips = *outer_trips * inner_trips;
    if (facts.trips > (uint64_t{1} << 31)) return std::nullopt;
  }
  // Totals: every real op in the range executes per iteration of its
  // scope — increments included (the slow path and the untransformed
  // module both pay them).
  const uint64_t outer_iters = *outer_trips;
  const uint64_t inner_iters = facts.nest ? *outer_trips * inner_trips : 0;
  uint64_t per_op_cap = 0;
  for (uint32_t pc = lo; pc < hi; ++pc) {
    const bool in_inner =
        facts.nest && pc >= facts.inner_lo && pc < facts.inner_hi;
    const uint64_t mult = in_inner ? inner_iters : outer_iters;
    facts.instr_total += mult;
    facts.cycles_total += mult * wasm::op_info(code[pc].op).base_cost;
    add_hist(facts.hist, code[pc].op, mult);
    if (mult > per_op_cap) per_op_cap = mult;
  }
  // Histogram counts are u32; bail out of folding rather than truncate.
  if (facts.instr_total > std::numeric_limits<uint32_t>::max()) {
    return std::nullopt;
  }
  for (uint32_t w : facts.increment_pcs) {
    const bool in_inner =
        facts.nest && w >= facts.inner_lo && w < facts.inner_hi;
    const uint64_t mult = in_inner ? inner_iters : outer_iters;
    facts.counter_amount +=
        mult * *increment_amount_at(code, w, counter_global);
  }
  return facts;
}

std::vector<FlatFunc> pass_fold_loops(const wasm::Module& module,
                                      const std::vector<FlatFunc>& flat,
                                      uint32_t counter_global,
                                      bool allow_nests,
                                      uint32_t* regions_added) {
  (void)module;
  std::vector<FlatFunc> out;
  out.reserve(flat.size());
  uint32_t added = 0;
  for (const FlatFunc& ff : flat) {
    const uint32_t n = static_cast<uint32_t>(ff.code.size());
    // Candidate heads: targets of real backward br_if ops, in code order.
    std::vector<uint32_t> heads;
    for (uint32_t pc = 0; pc < n; ++pc) {
      const FlatOp& op = ff.code[pc];
      if (plain(op, Op::BrIf) && op.target_pc <= pc) {
        heads.push_back(op.target_pc);
      }
    }
    std::sort(heads.begin(), heads.end());
    heads.erase(std::unique(heads.begin(), heads.end()), heads.end());
    auto inside_existing = [&](uint32_t a, uint32_t b) {
      for (const OptRegion& r : ff.regions) {
        if (a < r.fast_end && r.enter_pc < b) return true;
        if (a < r.slow_end && r.slow_begin < b) return true;
      }
      return false;
    };
    std::vector<FoldFacts> sites;
    for (uint32_t lo : heads) {
      std::optional<FoldFacts> facts =
          match_counted_loop(ff, lo, lo, counter_global, allow_nests);
      if (!facts) continue;
      if (inside_existing(lo, facts->hi)) continue;
      bool overlaps = false;
      for (const FoldFacts& s : sites) {
        if (facts->lo < s.hi && s.lo < facts->hi) overlaps = true;
      }
      if (!overlaps) sites.push_back(std::move(*facts));
    }
    if (sites.empty()) {
      out.push_back(ff);
      continue;
    }
    FuncEditor ed(ff);
    struct Placed {
      const FoldFacts* facts;
      uint32_t enter_pc;
      uint32_t fast_begin;
      uint32_t fast_end;
      std::vector<uint32_t> fast_pc;  // fast position of each body pc
    };
    std::vector<Placed> placed;
    size_t next_site = 0;
    for (uint32_t pc = 0; pc < n; ++pc) {
      if (next_site < sites.size() && pc == sites[next_site].lo) {
        const FoldFacts& s = sites[next_site];
        Placed pl;
        pl.facts = &s;
        interp::FlatOp enter;
        enter.op = Op::Nop;
        enter.synthetic = true;
        enter.b = interp::kRegionEnterTag;
        pl.enter_pc = ed.emit(enter);  // target patched to slow_begin below
        ed.map_old(s.lo, pl.enter_pc);
        pl.fast_begin = ed.pos();
        // Fast body: the loop minus its increments, backedges re-targeted
        // to the first surviving op at or after their head.
        pl.fast_pc.assign(s.hi - s.lo, UINT32_MAX);
        size_t next_inc = 0;
        for (uint32_t q = s.lo; q < s.hi; ++q) {
          if (next_inc < s.increment_pcs.size() &&
              q == s.increment_pcs[next_inc]) {
            q += 3;
            ++next_inc;
            continue;
          }
          pl.fast_pc[q - s.lo] = ed.pos();
          const FlatOp& op = ff.code[q];
          if (op.op == Op::BrIf) {
            uint32_t head = op.target_pc;
            while (pl.fast_pc[head - s.lo] == UINT32_MAX) ++head;
            ed.emit_copy(q, /*synthetic=*/true, pl.fast_pc[head - s.lo]);
          } else {
            ed.emit_copy(q, /*synthetic=*/true);
          }
        }
        pl.fast_end = ed.pos();
        placed.push_back(std::move(pl));
        ++next_site;
        pc = s.hi - 1;  // resume copying at the join
        continue;
      }
      ed.copy(pc);
    }
    // Slow copies: verbatim baseline loops at the end of the function, each
    // exiting through a synthetic br to the join.
    for (Placed& pl : placed) {
      const FoldFacts& s = *pl.facts;
      const uint32_t slow_begin = ed.pos();
      for (uint32_t q = s.lo; q < s.hi; ++q) {
        const FlatOp& op = ff.code[q];
        if (op.op == Op::BrIf) {
          ed.emit_copy(q, /*synthetic=*/false,
                       slow_begin + (op.target_pc - s.lo));
        } else {
          ed.emit_copy(q, /*synthetic=*/false);
        }
      }
      // Loop exit: stack height equals the backedge's unwind height, so a
      // height-preserving br to the join is a pure jump.
      interp::FlatOp exit;
      exit.op = Op::Br;
      exit.synthetic = true;
      exit.arity = 0;
      exit.unwind = ff.code[s.hi - 1].unwind;
      ed.emit_with_old_target(exit, s.hi);
      const uint32_t slow_end = ed.pos();

      OptRegion region;
      region.kind = s.nest ? OptRegionKind::FoldNest : OptRegionKind::FoldLoop;
      region.enter_pc = pl.enter_pc;
      region.fast_begin = pl.fast_begin;
      region.fast_end = pl.fast_end;
      region.slow_begin = slow_begin;
      region.slow_end = slow_end;
      region.trips = s.trips;
      region.instr_total = s.instr_total;
      region.cycles_total = s.cycles_total;
      region.counter_amount = s.counter_amount;
      region.counter_global = counter_global;
      ed.add_region(region, s.hist);
      ++added;
    }
    FlatFunc rebuilt = ed.finish();
    // Patch each marker's slow target (finish() rewrote marker indices, so
    // locate the freshly added regions through the rebuilt region list).
    for (const OptRegion& r : rebuilt.regions) {
      rebuilt.code[r.enter_pc].target_pc = r.slow_begin;
    }
    interp::compute_block_costs(rebuilt);
    out.push_back(std::move(rebuilt));
  }
  if (regions_added != nullptr) *regions_added = added;
  return out;
}

}  // namespace acctee::analysis::opt::detail
