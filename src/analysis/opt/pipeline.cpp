// The pass manager (DESIGN.md §19): fixed deterministic pass order, gated
// by opt_level, with the verify-after-each-pass discipline — each pass
// output is immediately re-proved (region semantics + §14 over the
// collapsed view) and its evidence diff (counts, digests, proof time)
// recorded in the trail the IE claims and the AE independently re-derives.
#include <chrono>

#include "analysis/opt/internal.hpp"
#include "analysis/opt/opt.hpp"
#include "common/error.hpp"

namespace acctee::analysis::opt {

using interp::FlatFunc;
using interp::FlatOp;
using interp::OptRegion;
using wasm::Op;

crypto::Digest flat_digest(const std::vector<FlatFunc>& flat) {
  crypto::Sha256 ctx;
  constexpr std::string_view kDomain = "acctee.optflat.v1";
  ctx.update(BytesView(reinterpret_cast<const uint8_t*>(kDomain.data()),
                       kDomain.size()));
  Bytes buf;
  auto u8 = [&](uint8_t v) { buf.push_back(v); };
  auto u32 = [&](uint32_t v) { append_u32le(buf, v); };
  auto u64 = [&](uint64_t v) { append_u64le(buf, v); };
  u32(static_cast<uint32_t>(flat.size()));
  ctx.update(buf);
  for (const FlatFunc& ff : flat) {
    buf.clear();
    u32(ff.type_index);
    u32(ff.num_params);
    u32(static_cast<uint32_t>(ff.local_types.size()));
    for (wasm::ValType t : ff.local_types) u8(static_cast<uint8_t>(t));
    u32(static_cast<uint32_t>(ff.code.size()));
    for (const FlatOp& op : ff.code) {
      u8(static_cast<uint8_t>(op.op));
      u8(op.synthetic ? 1 : 0);
      u8(op.arity);
      u32(op.a);
      u32(op.target_pc);
      u32(op.unwind);
      u64(op.b);
    }
    u32(static_cast<uint32_t>(ff.br_tables.size()));
    for (const auto& table : ff.br_tables) {
      u32(static_cast<uint32_t>(table.size()));
      for (const interp::BrTarget& t : table) {
        u32(t.pc);
        u32(t.unwind);
        u8(t.arity);
      }
    }
    u32(static_cast<uint32_t>(ff.regions.size()));
    for (const OptRegion& r : ff.regions) {
      u8(static_cast<uint8_t>(r.kind));
      u32(r.enter_pc);
      u32(r.fast_begin);
      u32(r.fast_end);
      u32(r.slow_begin);
      u32(r.slow_end);
      u32(r.callee);
      u64(r.trips);
      u64(r.instr_total);
      u64(r.cycles_total);
      u64(r.counter_amount);
      u32(r.counter_global);
      u32(r.calls_folded);
      u32(r.frames_needed);
      u32(r.hist_begin);
      u32(r.hist_end);
    }
    u32(static_cast<uint32_t>(ff.region_hist.size()));
    for (const interp::BlockOpCount& h : ff.region_hist) {
      u8(static_cast<uint8_t>(h.op));
      u32(h.count);
    }
    ctx.update(buf);
  }
  return ctx.finish();
}

bool flat_equal(const std::vector<FlatFunc>& a,
                const std::vector<FlatFunc>& b) {
  if (a.size() != b.size()) return false;
  auto op_eq = [](const FlatOp& x, const FlatOp& y) {
    return x.op == y.op && x.synthetic == y.synthetic && x.arity == y.arity &&
           x.a == y.a && x.target_pc == y.target_pc && x.unwind == y.unwind &&
           x.b == y.b;
  };
  for (size_t f = 0; f < a.size(); ++f) {
    const FlatFunc& fa = a[f];
    const FlatFunc& fb = b[f];
    if (fa.type_index != fb.type_index || fa.num_params != fb.num_params ||
        fa.local_types != fb.local_types ||
        fa.code.size() != fb.code.size() ||
        fa.br_tables != fb.br_tables || fa.regions != fb.regions ||
        fa.region_hist != fb.region_hist) {
      return false;
    }
    for (size_t i = 0; i < fa.code.size(); ++i) {
      if (!op_eq(fa.code[i], fb.code[i])) return false;
    }
  }
  return true;
}

std::vector<FlatFunc> collapsed_view(const std::vector<FlatFunc>& flat) {
  std::vector<FlatFunc> out = flat;
  for (FlatFunc& ff : out) {
    for (const OptRegion& r : ff.regions) {
      // Enter becomes an unconditional jump to the slow copy: the only
      // path the §14 dataflow sees is the verbatim baseline code.
      FlatOp& enter = ff.code[r.enter_pc];
      enter = FlatOp{};
      enter.op = Op::Br;
      enter.synthetic = true;
      enter.target_pc = r.slow_begin;
      // The fast body becomes an unreachable scaffold chain ending in a
      // trap sink, so it contributes no edges (in particular none into the
      // join) and the dead-block seeding carries zero debt through it.
      for (uint32_t pc = r.fast_begin; pc < r.fast_end; ++pc) {
        FlatOp& op = ff.code[pc];
        op = FlatOp{};
        op.op = pc + 1 == r.fast_end ? Op::Unreachable : Op::Nop;
        op.synthetic = true;
      }
    }
    ff.regions.clear();
    ff.region_hist.clear();
    interp::compute_block_costs(ff);
  }
  return out;
}

uint32_t count_hot_increments(const std::vector<FlatFunc>& flat,
                              uint32_t counter_global) {
  uint32_t count = 0;
  for (const FlatFunc& ff : flat) {
    auto in_slow = [&](uint32_t pc) {
      for (const OptRegion& r : ff.regions) {
        if (pc >= r.slow_begin && pc < r.slow_end) return true;
      }
      return false;
    };
    const uint32_t n = static_cast<uint32_t>(ff.code.size());
    for (uint32_t pc = 0; pc < n; ++pc) {
      if (in_slow(pc)) continue;
      if (detail::increment_amount_at(ff.code, pc, counter_global)) {
        ++count;
        pc += 3;
      }
    }
  }
  return count;
}

namespace {

uint32_t count_blocks(const std::vector<FlatFunc>& flat) {
  uint32_t blocks = 0;
  for (const FlatFunc& ff : flat) {
    blocks += static_cast<uint32_t>(ff.blocks.size());
  }
  return blocks;
}

}  // namespace

PipelineResult run_pipeline(const wasm::Module& module,
                            const std::vector<FlatFunc>& baseline,
                            uint32_t counter_global, uint32_t opt_level,
                            const instrument::WeightTable& weights,
                            const instrument::HostChargePolicy& host_charge) {
  PipelineResult result;
  result.trail.opt_level = opt_level > kMaxOptLevel ? kMaxOptLevel : opt_level;
  result.flat = baseline;
  if (result.trail.opt_level == 0) return result;

  struct Pass {
    const char* name;
    uint32_t min_level;
  };
  constexpr Pass kPasses[] = {
      {"dead-blocks", 1},
      {"coalesce-calls", 1},
      {"fold-loops", 2},
  };
  for (const Pass& pass : kPasses) {
    if (result.trail.opt_level < pass.min_level) continue;
    PassReport report;
    report.name = pass.name;
    report.min_level = pass.min_level;
    report.blocks_before = count_blocks(result.flat);
    report.increments_before =
        count_hot_increments(result.flat, counter_global);

    std::vector<FlatFunc> next;
    if (report.name == "dead-blocks") {
      next = detail::pass_dead_blocks(module, result.flat,
                                      &report.ops_elided);
    } else if (report.name == "coalesce-calls") {
      next = detail::pass_coalesce_calls(module, result.flat, counter_global,
                                         weights, host_charge,
                                         &report.regions_added);
    } else {
      next = detail::pass_fold_loops(module, result.flat, counter_global,
                                     /*allow_nests=*/result.trail.opt_level >=
                                         3,
                                     &report.regions_added);
    }

    // Verify-after-each-pass: the §14 proof (collapsed view) plus the
    // per-region semantic re-derivation must accept the output before it
    // becomes the next pass's input. A failure here is a pass bug; it must
    // never ship, so fail closed.
    const auto t0 = std::chrono::steady_clock::now();
    OptVerifyResult proof = verify_optimised_module(
        module, next, counter_global, weights, host_charge);
    const auto t1 = std::chrono::steady_clock::now();
    report.proof_micros = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0)
            .count());
    if (!proof.ok) {
      throw Error(std::string("opt pipeline: pass '") + pass.name +
                  "' failed its counter-equivalence proof: " + proof.error);
    }
    report.blocks_after = count_blocks(next);
    report.increments_after = count_hot_increments(next, counter_global);
    report.cost_vector_digest = proof.cost_vector_digest;
    report.flat_digest = flat_digest(next);
    result.flat = std::move(next);
    result.trail.passes.push_back(std::move(report));
  }
  return result;
}

interp::CompiledModulePtr optimise_compiled(
    const interp::CompiledModulePtr& base, uint32_t counter_global,
    uint32_t opt_level, const instrument::WeightTable& weights,
    const instrument::HostChargePolicy& host_charge, OptTrail* trail_out) {
  PipelineResult pr =
      run_pipeline(base->module(), base->flat(), counter_global, opt_level,
                   weights, host_charge);
  if (trail_out != nullptr) *trail_out = pr.trail;
  if (pr.trail.opt_level == 0) return base;
  interp::CompiledModule::CompileOptions options;
  options.validate = false;  // the baseline artifact already validated
  options.lower = base->lower_options();
  return std::make_shared<const interp::CompiledModule>(
      base->module(), std::move(pr.flat), base->flat(), options,
      base->validated());
}

bool check_optimised_flat(const wasm::Module& module,
                          const std::vector<FlatFunc>& flat,
                          uint32_t counter_global,
                          const instrument::WeightTable& weights,
                          const instrument::HostChargePolicy& host_charge,
                          const crypto::Digest& claimed_cost_digest) {
  OptVerifyResult res = verify_optimised_module(module, flat, counter_global,
                                                weights, host_charge);
  return res.ok && res.cost_vector_digest == claimed_cost_digest;
}

}  // namespace acctee::analysis::opt
