// verify_optimised_module: the machine-checked counter-equivalence proof
// for transformed modules (DESIGN.md §19). Three layers, none of which
// trusts anything the transform wrote:
//
//  1. Structure — regions are disjoint, single-entry (nothing targets a
//     marker or branches into a fast/slow range from outside), fall-through
//     cannot reach a slow copy, and every op's immediates are in range (a
//     hostile flat module must not be able to make the interpreter index
//     out of bounds).
//  2. Semantics — every region's charge is re-derived from its slow copy by
//     the same matcher the pass used: trip counts from the induction code,
//     histograms and cycle totals from the op sequence, counter amounts
//     from the increment windows. The fast body must be exactly the slow
//     body minus its increments (coalesce: exactly the canonical spill +
//     zero-init + remapped-callee sequence over scratch locals nothing else
//     touches), so the two paths are observably identical.
//  3. Dataflow — the §14 wrapping-debt proof re-runs over the collapsed
//     view, where every region is replaced by an unconditional jump to its
//     verbatim slow copy; the recovered cost vector of the transformed
//     module is the proof's output, and the caller compares its digest
//     against the claim (evidence v4 / the pipeline trail).
#include <string>

#include "analysis/opt/internal.hpp"
#include "analysis/opt/opt.hpp"
#include "analysis/verifier.hpp"

namespace acctee::analysis::opt {

using interp::FlatFunc;
using interp::FlatOp;
using interp::OptRegion;
using interp::OptRegionKind;
using wasm::Op;

namespace {

struct Checker {
  const wasm::Module& module;
  const std::vector<FlatFunc>& flat;
  uint32_t counter_global;
  std::string error;

  bool fail(uint32_t df, const std::string& why) {
    error = "function #" + std::to_string(df) + ": " + why;
    return false;
  }

  /// Immediate-range sanity for every op (hostile flat must not crash the
  /// interpreter, let alone execute).
  bool check_bounds(uint32_t df) {
    const FlatFunc& ff = flat[df];
    const uint32_t n = static_cast<uint32_t>(ff.code.size());
    const uint32_t num_funcs = static_cast<uint32_t>(
        module.imports.size() + module.functions.size());
    const uint32_t num_globals = static_cast<uint32_t>(module.globals.size());
    if (n == 0) return fail(df, "empty code array");
    for (uint32_t pc = 0; pc < n; ++pc) {
      const FlatOp& op = ff.code[pc];
      switch (op.op) {
        case Op::If:
        case Op::Br:
        case Op::BrIf:
          if (op.target_pc >= n) return fail(df, "branch target out of range");
          break;
        case Op::Nop:
          if (interp::is_region_enter(op) && op.target_pc >= n) {
            return fail(df, "region enter target out of range");
          }
          break;
        case Op::BrTable:
          if (op.a >= ff.br_tables.size()) {
            return fail(df, "br_table index out of range");
          }
          for (const interp::BrTarget& t : ff.br_tables[op.a]) {
            if (t.pc >= n) return fail(df, "br_table target out of range");
          }
          break;
        case Op::Call:
          if (op.a >= num_funcs) return fail(df, "call index out of range");
          break;
        case Op::CallIndirect:
          if (op.a >= module.types.size()) {
            return fail(df, "call_indirect type out of range");
          }
          break;
        case Op::LocalGet:
        case Op::LocalSet:
        case Op::LocalTee:
          if (op.a >= ff.local_types.size()) {
            return fail(df, "local index out of range");
          }
          break;
        case Op::GlobalGet:
        case Op::GlobalSet:
          if (op.a >= num_globals) return fail(df, "global index out of range");
          break;
        default:
          break;
      }
    }
    return true;
  }

  bool in_fast(const OptRegion& r, uint32_t pc) const {
    return pc >= r.fast_begin && pc < r.fast_end;
  }
  bool in_slow(const OptRegion& r, uint32_t pc) const {
    return pc >= r.slow_begin && pc < r.slow_end;
  }

  bool check_structure(uint32_t df) {
    const FlatFunc& ff = flat[df];
    const uint32_t n = static_cast<uint32_t>(ff.code.size());
    // Marker ↔ region bijection.
    uint32_t markers = 0;
    for (uint32_t pc = 0; pc < n; ++pc) {
      if (interp::is_region_enter(ff.code[pc])) ++markers;
    }
    if (markers != ff.regions.size()) {
      return fail(df, "marker count does not match region count");
    }
    for (uint32_t i = 0; i < ff.regions.size(); ++i) {
      const OptRegion& r = ff.regions[i];
      if (i > 0 && ff.regions[i - 1].enter_pc >= r.enter_pc) {
        return fail(df, "regions not sorted by enter_pc");
      }
      if (r.enter_pc >= n || r.fast_begin != r.enter_pc + 1 ||
          r.fast_end < r.fast_begin || r.fast_end > n ||
          r.slow_begin >= r.slow_end || r.slow_end > n) {
        return fail(df, "region range out of bounds");
      }
      if (r.hist_begin > r.hist_end ||
          r.hist_end > ff.region_hist.size()) {
        return fail(df, "region histogram range out of bounds");
      }
      const FlatOp& enter = ff.code[r.enter_pc];
      if (!interp::is_region_enter(enter) || enter.a != i ||
          enter.target_pc != r.slow_begin) {
        return fail(df, "region enter marker mismatch");
      }
      if (r.counter_global != counter_global) {
        return fail(df, "region bound to a different counter global");
      }
      // Fast body: synthetic, never a nested marker, never counter access.
      for (uint32_t pc = r.fast_begin; pc < r.fast_end; ++pc) {
        const FlatOp& op = ff.code[pc];
        if (!op.synthetic || interp::is_region_enter(op)) {
          return fail(df, "fast body contains a real op or nested marker");
        }
        if ((op.op == Op::GlobalGet || op.op == Op::GlobalSet) &&
            op.a == counter_global) {
          return fail(df, "fast body touches the counter global");
        }
      }
      // Nothing falls through into the slow copy.
      const Op before = ff.code[r.slow_begin - 1].op;
      if (r.slow_begin == 0 ||
          !(before == Op::Br || before == Op::BrTable ||
            before == Op::Return || before == Op::Unreachable)) {
        return fail(df, "slow copy reachable by fall-through");
      }
      // Pairwise disjoint with every other region (marker+fast and slow).
      for (uint32_t j = i + 1; j < ff.regions.size(); ++j) {
        const OptRegion& o = ff.regions[j];
        auto overlap = [](uint32_t a1, uint32_t b1, uint32_t a2,
                          uint32_t b2) { return a1 < b2 && a2 < b1; };
        if (overlap(r.enter_pc, r.fast_end, o.enter_pc, o.fast_end) ||
            overlap(r.enter_pc, r.fast_end, o.slow_begin, o.slow_end) ||
            overlap(r.slow_begin, r.slow_end, o.enter_pc, o.fast_end) ||
            overlap(r.slow_begin, r.slow_end, o.slow_begin, o.slow_end)) {
          return fail(df, "regions overlap");
        }
      }
    }
    // Single-entry: branches may enter a fast range only from inside it, a
    // slow range only from inside it or its own marker, and nothing may
    // target a marker.
    auto check_edge = [&](uint32_t p, uint32_t t) {
      for (uint32_t i = 0; i < ff.regions.size(); ++i) {
        const OptRegion& r = ff.regions[i];
        if (t == r.enter_pc) return false;
        if (in_fast(r, t) && !in_fast(r, p)) return false;
        if (in_slow(r, t) && !(in_slow(r, p) || p == r.enter_pc)) {
          return false;
        }
      }
      return true;
    };
    for (uint32_t p = 0; p < n; ++p) {
      const FlatOp& op = ff.code[p];
      if (op.op == Op::If || op.op == Op::Br || op.op == Op::BrIf ||
          interp::is_region_enter(op)) {
        if (!check_edge(p, op.target_pc)) {
          return fail(df, "branch crosses a region boundary");
        }
      }
      if (op.op == Op::BrTable) {
        for (const interp::BrTarget& t : ff.br_tables[op.a]) {
          if (!check_edge(p, t.pc)) {
            return fail(df, "br_table entry crosses a region boundary");
          }
        }
      }
    }
    return true;
  }

  bool check_hist(uint32_t df, const OptRegion& r,
                  const std::vector<interp::BlockOpCount>& derived) {
    const FlatFunc& ff = flat[df];
    if (r.hist_end - r.hist_begin != derived.size()) {
      return fail(df, "region histogram length mismatch");
    }
    for (uint32_t k = 0; k < derived.size(); ++k) {
      if (!(ff.region_hist[r.hist_begin + k] == derived[k])) {
        return fail(df, "region histogram mismatch");
      }
    }
    return true;
  }

  bool check_fold(uint32_t df, const OptRegion& r) {
    const FlatFunc& ff = flat[df];
    if (r.callee != 0 || r.calls_folded != 0 || r.frames_needed != 0) {
      return fail(df, "fold region claims call effects");
    }
    // The slow copy ends in a height-preserving synthetic br to the join.
    const FlatOp& exit = ff.code[r.slow_end - 1];
    if (!(exit.synthetic && exit.op == Op::Br && exit.arity == 0 &&
          exit.target_pc == r.fast_end)) {
      return fail(df, "fold slow copy does not exit to the join");
    }
    if (r.slow_end - r.slow_begin < 2) return fail(df, "fold slow too short");
    const FlatOp& backedge = ff.code[r.slow_end - 2];
    if (exit.unwind != backedge.unwind) {
      return fail(df, "fold slow exit unwinds to the wrong height");
    }
    // Re-derive everything from the slow copy.
    std::optional<detail::FoldFacts> facts = detail::match_counted_loop(
        ff, r.slow_begin, r.enter_pc, counter_global, /*allow_nest=*/true);
    if (!facts) return fail(df, "fold slow copy is not a countable loop");
    if (facts->hi != r.slow_end - 1) {
      return fail(df, "fold region span disagrees with the derived loop");
    }
    const bool want_nest = r.kind == OptRegionKind::FoldNest;
    if (facts->nest != want_nest || facts->trips != r.trips ||
        facts->instr_total != r.instr_total ||
        facts->cycles_total != r.cycles_total ||
        facts->counter_amount != r.counter_amount) {
      return fail(df, "fold region charge disagrees with derivation");
    }
    if (!check_hist(df, r, facts->hist)) return false;
    // Fast body == slow body minus increments, branch targets mapped to the
    // first surviving op at or after their head.
    const uint32_t span = facts->hi - facts->lo;
    std::vector<uint32_t> fast_pc(span, UINT32_MAX);
    uint32_t fpc = r.fast_begin;
    size_t next_inc = 0;
    for (uint32_t q = facts->lo; q < facts->hi; ++q) {
      if (next_inc < facts->increment_pcs.size() &&
          q == facts->increment_pcs[next_inc]) {
        q += 3;
        ++next_inc;
        continue;
      }
      if (fpc >= r.fast_end) return fail(df, "fast body shorter than slow");
      fast_pc[q - facts->lo] = fpc++;
    }
    if (fpc != r.fast_end) return fail(df, "fast body longer than slow");
    next_inc = 0;
    for (uint32_t q = facts->lo; q < facts->hi; ++q) {
      if (next_inc < facts->increment_pcs.size() &&
          q == facts->increment_pcs[next_inc]) {
        q += 3;
        ++next_inc;
        continue;
      }
      const FlatOp& slow = ff.code[q];
      const FlatOp& fast = ff.code[fast_pc[q - facts->lo]];
      if (!(fast.synthetic && fast.op == slow.op && fast.arity == slow.arity &&
            fast.a == slow.a && fast.b == slow.b &&
            fast.unwind == slow.unwind)) {
        return fail(df, "fast body diverges from slow body");
      }
      if (slow.op == Op::BrIf) {
        uint32_t head = slow.target_pc;
        while (fast_pc[head - facts->lo] == UINT32_MAX) ++head;
        if (fast.target_pc != fast_pc[head - facts->lo]) {
          return fail(df, "fast backedge targets the wrong head");
        }
      }
    }
    return true;
  }

  bool check_coalesce(uint32_t df, const OptRegion& r) {
    const FlatFunc& ff = flat[df];
    if (r.slow_end != r.slow_begin + 2) {
      return fail(df, "coalesce slow copy is not call + br");
    }
    const FlatOp& call = ff.code[r.slow_begin];
    const FlatOp& exit = ff.code[r.slow_begin + 1];
    if (!(!call.synthetic && call.op == Op::Call && call.a == r.callee)) {
      return fail(df, "coalesce slow copy does not call the callee");
    }
    if (!(exit.synthetic && exit.op == Op::Br && exit.arity == 0 &&
          exit.target_pc == r.fast_end)) {
      return fail(df, "coalesce slow copy does not exit to the join");
    }
    std::optional<detail::CoalesceFacts> facts =
        detail::match_coalesce_callee(module, flat, r.callee, counter_global);
    if (!facts) return fail(df, "coalesce callee is not a foldable leaf");
    if (facts->instr_total != r.instr_total ||
        facts->cycles_total != r.cycles_total ||
        facts->counter_amount != r.counter_amount || r.trips != 1 ||
        r.calls_folded != 1 || r.frames_needed != 1) {
      return fail(df, "coalesce region charge disagrees with derivation");
    }
    if (!check_hist(df, r, facts->hist)) return false;
    // The fast body must be exactly the canonical inline sequence over a
    // scratch-local window nothing else touches.
    const FlatFunc& cf =
        flat[r.callee - static_cast<uint32_t>(module.imports.size())];
    std::vector<FlatOp> gen0 = detail::coalesce_fast_body(
        cf, facts->nparams, /*base=*/0, facts->increment_pcs);
    if (gen0.size() != r.fast_end - r.fast_begin) {
      return fail(df, "coalesce fast body length mismatch");
    }
    uint32_t base = 0;
    for (size_t j = 0; j < gen0.size(); ++j) {
      const Op o = gen0[j].op;
      if (o == Op::LocalGet || o == Op::LocalSet || o == Op::LocalTee) {
        const FlatOp& fast = ff.code[r.fast_begin + j];
        if (fast.a < gen0[j].a) {
          return fail(df, "coalesce local window underflows");
        }
        base = fast.a - gen0[j].a;
        break;
      }
    }
    std::vector<FlatOp> expect = detail::coalesce_fast_body(
        cf, facts->nparams, base, facts->increment_pcs);
    for (size_t j = 0; j < expect.size(); ++j) {
      const FlatOp& fast = ff.code[r.fast_begin + j];
      const FlatOp& want = expect[j];
      if (!(fast.synthetic && fast.op == want.op &&
            fast.arity == want.arity && fast.a == want.a &&
            fast.b == want.b)) {
        return fail(df, "coalesce fast body diverges from callee");
      }
    }
    // Scratch exclusivity: the spill window [base, base+len) is only ever
    // touched by this region's fast body — otherwise the fast and slow
    // paths would diverge in visible local state.
    const uint32_t len = static_cast<uint32_t>(cf.local_types.size());
    if (len != 0) {
      if (base + len > ff.local_types.size()) {
        return fail(df, "coalesce local window out of range");
      }
      for (uint32_t j = 0; j < len; ++j) {
        if (ff.local_types[base + j] != cf.local_types[j]) {
          return fail(df, "coalesce local window types mismatch");
        }
      }
      const uint32_t n = static_cast<uint32_t>(ff.code.size());
      for (uint32_t pc = 0; pc < n; ++pc) {
        if (in_fast(r, pc)) continue;
        const FlatOp& op = ff.code[pc];
        if ((op.op == Op::LocalGet || op.op == Op::LocalSet ||
             op.op == Op::LocalTee) &&
            op.a >= base && op.a < base + len) {
          return fail(df, "coalesce scratch locals touched outside region");
        }
      }
    }
    return true;
  }
};

}  // namespace

OptVerifyResult verify_optimised_module(
    const wasm::Module& module, const std::vector<FlatFunc>& flat,
    uint32_t counter_global, const instrument::WeightTable& weights,
    const instrument::HostChargePolicy& host_charge) {
  OptVerifyResult result;
  if (flat.size() != module.functions.size()) {
    result.error = "flat module does not match the module's function count";
    return result;
  }
  Checker chk{module, flat, counter_global, {}};
  for (uint32_t df = 0; df < flat.size(); ++df) {
    if (!chk.check_bounds(df) || !chk.check_structure(df)) {
      result.error = chk.error;
      return result;
    }
    for (const OptRegion& r : flat[df].regions) {
      const bool ok = r.kind == OptRegionKind::CoalesceCall
                          ? chk.check_coalesce(df, r)
                          : chk.check_fold(df, r);
      if (!ok) {
        result.error = chk.error;
        return result;
      }
      ++result.regions;
    }
  }
  // Layer 3: the §14 proof over the collapsed view. Slow copies are
  // verbatim baseline code, so the wrapping-debt dataflow applies as-is;
  // its recovered cost vector is the transformed module's claim.
  VerifyResult vres = verify_instrumented_module(
      module, collapsed_view(flat), counter_global, weights, host_charge);
  if (!vres.ok) {
    result.error = "collapsed-view equivalence proof failed: " + vres.error;
    return result;
  }
  result.cost_vector = std::move(vres.cost_vector);
  result.cost_vector_digest = vres.cost_vector_digest;
  result.ok = true;
  return result;
}

}  // namespace acctee::analysis::opt
