#include "analysis/loops.hpp"

namespace acctee::analysis {

using interp::FlatFunc;
using interp::FlatOp;
using wasm::Op;

namespace {

bool plain(const FlatOp& op, Op kind) {
  return !op.synthetic && op.op == kind;
}

bool is_local_op(const FlatOp& op) {
  return !op.synthetic && (op.op == Op::LocalGet || op.op == Op::LocalSet ||
                           op.op == Op::LocalTee);
}

bool writes_local(const FlatOp& op, uint32_t local) {
  return !op.synthetic &&
         (op.op == Op::LocalSet || op.op == Op::LocalTee) && op.a == local;
}

int32_t const_i32(const FlatOp& op) {
  return static_cast<int32_t>(static_cast<uint32_t>(op.b));
}

/// Matches the canonical induction update `get $v/const k/add|sub/write $v`
/// (or the commuted add) ending at `write_pc`, for the given variable.
/// Returns the signed step, or nullopt.
std::optional<int32_t> match_induction_update(const std::vector<FlatOp>& code,
                                              uint32_t first_pc,
                                              uint32_t write_pc,
                                              uint32_t var) {
  if (write_pc < first_pc + 3) return std::nullopt;
  const FlatOp& w = code[write_pc];
  if (!writes_local(w, var)) return std::nullopt;
  const FlatOp& o0 = code[write_pc - 3];
  const FlatOp& o1 = code[write_pc - 2];
  const FlatOp& o2 = code[write_pc - 1];
  // Pattern A: local.get $v / i32.const k / i32.add|sub
  if (plain(o0, Op::LocalGet) && o0.a == var && plain(o1, Op::I32Const) &&
      (plain(o2, Op::I32Add) || plain(o2, Op::I32Sub))) {
    int32_t k = const_i32(o1);
    return o2.op == Op::I32Add ? k : -k;
  }
  // Pattern B: i32.const k / local.get $v / i32.add (commuted add only)
  if (plain(o0, Op::I32Const) && plain(o1, Op::LocalGet) && o1.a == var &&
      plain(o2, Op::I32Add)) {
    return const_i32(o0);
  }
  return std::nullopt;
}

struct LoopShape {
  uint32_t body_block = 0;
  uint32_t preheader_block = 0;
  uint64_t body_weight = 0;
};

/// Structural core shared by both region kinds: block `b` must be a
/// single-block natural loop over pure workload ops, entered only through a
/// fallthrough preheader that ends with the `loop` op and immediately
/// dominates the body.
std::optional<LoopShape> match_loop_shape(
    const FlatFunc& func, const Cfg& cfg, const std::vector<uint32_t>& idom,
    const Classification& cls, const instrument::WeightTable& weights,
    const instrument::HostChargePolicy& host_charge, uint32_t b) {
  const std::vector<FlatOp>& code = func.code;
  const BasicBlock& bb = cfg.blocks[b];
  const FlatOp& last = code[bb.end - 1];
  if (!plain(last, Op::BrIf) || last.target_pc != bb.begin) return std::nullopt;
  if (bb.preds.size() != 2) return std::nullopt;
  uint32_t p = bb.preds[0] == b ? bb.preds[1] : bb.preds[0];
  if (p == b || idom[b] != p) return std::nullopt;
  if (bb.begin == 0) return std::nullopt;
  const BasicBlock& pre = cfg.blocks[p];
  if (pre.end != bb.begin) return std::nullopt;  // must fall through
  if (!plain(code[bb.begin - 1], Op::Loop)) return std::nullopt;

  LoopShape shape;
  shape.body_block = b;
  shape.preheader_block = p;
  for (uint32_t pc = bb.begin; pc < bb.end; ++pc) {
    if (cls.op_class[pc] != OpClass::Workload || code[pc].synthetic) {
      return std::nullopt;  // instrumented or synthetic op inside the body
    }
    // Recomputed with the same host-entry surcharge the instrumenter used,
    // so a host call inside a counted body keeps the epilogue's claimed
    // per-iteration weight honest.
    shape.body_weight += weights.weight(code[pc].op) +
                         host_charge.surcharge(code[pc].op, code[pc].a);
  }
  return shape;
}

/// Hoisted-loop recognition, driven by the epilogue that must start at the
/// loop's fallthrough pc.
std::optional<CountedRegion> match_hoisted(const FlatFunc& func, const Cfg& cfg,
                                           uint32_t counter_global,
                                           const LoopShape& shape) {
  const std::vector<FlatOp>& code = func.code;
  const uint32_t n = static_cast<uint32_t>(code.size());
  const BasicBlock& bb = cfg.blocks[shape.body_block];
  const uint32_t e = bb.end;  // epilogue start (the loop's fallthrough pc)
  if (e + 11 > n) return std::nullopt;
  // All 11 ops must sit in one block — a branch into the epilogue would
  // let part of it execute on its own.
  if (cfg.block_of_pc[e] != cfg.block_of_pc[e + 10]) return std::nullopt;
  if (!(plain(code[e], Op::GlobalGet) && code[e].a == counter_global &&
        plain(code[e + 1], Op::LocalGet) && plain(code[e + 2], Op::LocalGet) &&
        plain(code[e + 3], Op::I32Sub) && plain(code[e + 4], Op::I32Const) &&
        plain(code[e + 5], Op::I32DivS) &&
        plain(code[e + 6], Op::I64ExtendI32S) &&
        plain(code[e + 7], Op::I64Const) && plain(code[e + 8], Op::I64Mul) &&
        plain(code[e + 9], Op::I64Add) &&
        plain(code[e + 10], Op::GlobalSet) &&
        code[e + 10].a == counter_global)) {
    return std::nullopt;
  }
  const uint32_t var = code[e + 1].a;
  const uint32_t scratch = code[e + 2].a;
  const int32_t step = const_i32(code[e + 4]);
  const uint64_t claimed_weight = code[e + 7].b;
  if (var == scratch || step == 0) return std::nullopt;
  // The epilogue divides by the step, so the claimed per-iteration weight
  // must be the one the verifier recomputed from the body itself.
  if (claimed_weight != shape.body_weight) return std::nullopt;

  // Save pair `local.get $var / local.set $scratch` directly before the
  // loop op, inside the preheader block.
  if (bb.begin < 3) return std::nullopt;
  const uint32_t save = bb.begin - 3;
  if (cfg.block_of_pc[save] != shape.preheader_block) return std::nullopt;
  if (!(plain(code[save], Op::LocalGet) && code[save].a == var &&
        plain(code[save + 1], Op::LocalSet) && code[save + 1].a == scratch)) {
    return std::nullopt;
  }

  // Exactly one induction write per iteration, by the epilogue's step.
  uint32_t write_pc = UINT32_MAX;
  uint32_t writes = 0;
  for (uint32_t pc = bb.begin; pc < bb.end; ++pc) {
    if (writes_local(code[pc], var)) {
      write_pc = pc;
      ++writes;
    }
    if (writes_local(code[pc], scratch)) return std::nullopt;
  }
  if (writes != 1) return std::nullopt;
  std::optional<int32_t> body_step =
      match_induction_update(code, bb.begin, write_pc, var);
  if (!body_step || *body_step != step) return std::nullopt;

  // The scratch local must appear exactly twice in the whole function (the
  // save's set and the epilogue's get): anything else could read the saved
  // value or overwrite it between save and epilogue.
  uint32_t scratch_uses = 0;
  for (const FlatOp& op : code) {
    if (is_local_op(op) && op.a == scratch) ++scratch_uses;
  }
  if (scratch_uses != 2) return std::nullopt;

  CountedRegion region;
  region.body_block = shape.body_block;
  region.preheader_block = shape.preheader_block;
  region.hoisted = true;
  region.induction_local = var;
  region.step = step;
  region.body_weight = shape.body_weight;
  region.scaffold_pcs = {save, save + 1};
  for (uint32_t pc = e; pc < e + 11; ++pc) region.scaffold_pcs.push_back(pc);
  return region;
}

/// Constant-trip recognition: canonical tail `get/const/add|sub/tee $v /
/// const LIMIT / lt_s|gt_s / br_if` plus `const START / set $v` directly
/// before the loop op (an already-recognised increment may sit between the
/// init and the loop — the flush the pass emits on loop entry).
std::optional<CountedRegion> match_const_trip(const FlatFunc& func,
                                              const Cfg& cfg,
                                              const Classification& cls,
                                              const LoopShape& shape) {
  const std::vector<FlatOp>& code = func.code;
  const BasicBlock& bb = cfg.blocks[shape.body_block];
  if (bb.end - bb.begin < 7) return std::nullopt;
  const uint32_t tee_pc = bb.end - 4;
  const FlatOp& tee = code[tee_pc];
  if (!plain(tee, Op::LocalTee)) return std::nullopt;
  const uint32_t var = tee.a;
  if (!plain(code[bb.end - 3], Op::I32Const)) return std::nullopt;
  const FlatOp& cmp = code[bb.end - 2];
  if (!plain(cmp, Op::I32LtS) && !plain(cmp, Op::I32GtS)) return std::nullopt;

  uint32_t writes = 0;
  for (uint32_t pc = bb.begin; pc < bb.end; ++pc) {
    if (writes_local(code[pc], var)) ++writes;
  }
  if (writes != 1) return std::nullopt;
  std::optional<int32_t> step =
      match_induction_update(code, bb.begin, tee_pc, var);
  if (!step || *step == 0) return std::nullopt;
  const bool upward = cmp.op == Op::I32LtS;
  if ((upward && *step <= 0) || (!upward && *step >= 0)) return std::nullopt;

  // Initialisation in the preheader, skipping any flush increment the pass
  // emitted between the init and the loop op.
  const BasicBlock& pre = cfg.blocks[shape.preheader_block];
  uint32_t q = bb.begin - 1;  // the loop op
  while (q > pre.begin && cls.op_class[q - 1] == OpClass::Increment) --q;
  if (q < pre.begin + 2) return std::nullopt;
  const FlatOp& init_set = code[q - 1];
  const FlatOp& init_const = code[q - 2];
  if (!(plain(init_set, Op::LocalSet) && init_set.a == var &&
        cls.op_class[q - 1] == OpClass::Workload &&
        plain(init_const, Op::I32Const) &&
        cls.op_class[q - 2] == OpClass::Workload)) {
    return std::nullopt;
  }

  // Independent do-while trip count: the body runs at least once; each
  // iteration moves the induction variable by |step| toward the limit.
  const int64_t start = const_i32(init_const);
  const int64_t limit = const_i32(code[bb.end - 3]);
  const int64_t distance = upward ? limit - start : start - limit;
  const int64_t magnitude = upward ? *step : -static_cast<int64_t>(*step);
  const int64_t trips =
      distance <= 0 ? 1 : (distance + magnitude - 1) / magnitude;

  CountedRegion region;
  region.body_block = shape.body_block;
  region.preheader_block = shape.preheader_block;
  region.hoisted = false;
  region.induction_local = var;
  region.step = *step;
  region.body_weight = shape.body_weight;
  region.trips = static_cast<uint64_t>(trips);
  region.exit_charge.from = shape.body_block;
  region.exit_charge.to = cfg.block_of_pc[bb.end];
  region.exit_charge.amount = shape.body_weight * region.trips;
  region.has_exit_charge = true;
  return region;
}

}  // namespace

std::vector<CountedRegion> find_counted_regions(
    const FlatFunc& func, const Cfg& cfg, const std::vector<uint32_t>& idom,
    const Classification& cls, uint32_t counter_global,
    const instrument::WeightTable& weights,
    const instrument::HostChargePolicy& host_charge) {
  std::vector<CountedRegion> regions;
  for (uint32_t b = 0; b < cfg.blocks.size(); ++b) {
    std::optional<LoopShape> shape =
        match_loop_shape(func, cfg, idom, cls, weights, host_charge, b);
    if (!shape) continue;
    if (auto hoisted = match_hoisted(func, cfg, counter_global, *shape)) {
      regions.push_back(std::move(*hoisted));
    } else if (auto folded = match_const_trip(func, cfg, cls, *shape)) {
      regions.push_back(std::move(*folded));
    }
  }
  return regions;
}

void apply_region_scaffolding(Classification& cls,
                              const std::vector<CountedRegion>& regions) {
  for (const CountedRegion& region : regions) {
    for (uint32_t pc : region.scaffold_pcs) {
      cls.op_class[pc] = OpClass::Scaffold;
    }
  }
}

}  // namespace acctee::analysis
