#include "analysis/mutate.hpp"

#include <algorithm>
#include <functional>
#include <sstream>

#include "common/error.hpp"
#include "wasm/opcode.hpp"

namespace acctee::analysis {

using wasm::Instr;
using wasm::Op;

const char* to_string(MutationKind kind) {
  switch (kind) {
    case MutationKind::DropIncrement: return "drop-increment";
    case MutationKind::HalveIncrement: return "halve-increment";
    case MutationKind::MoveIncrementAcrossBranch: return "move-across-branch";
    case MutationKind::RetargetIncrement: return "retarget-counter";
    case MutationKind::CorruptHoistedWeight: return "corrupt-hoisted-weight";
  }
  return "?";
}

namespace {

/// Walks every function body in deterministic pre-order, offering each
/// applicable mutation to `offer`. When enumerating, `offer` records the
/// site; when applying, it mutates at the chosen ordinal and returns true
/// to stop the walk.
class Walker {
 public:
  Walker(uint32_t counter_global,
         std::function<bool(const MutationSite&, std::vector<Instr>*, size_t)>
             offer)
      : counter_(counter_global), offer_(std::move(offer)) {}

  void walk(wasm::Module& module) {
    for (uint32_t f = 0; f < module.functions.size(); ++f) {
      func_ = f;
      visit(module.functions[f].body);
      if (done_) return;
    }
  }

 private:
  bool is_increment(const std::vector<Instr>& body, size_t i) const {
    return i + 3 < body.size() && body[i].op == Op::GlobalGet &&
           body[i].index == counter_ && body[i + 1].op == Op::I64Const &&
           body[i + 2].op == Op::I64Add && body[i + 3].op == Op::GlobalSet &&
           body[i + 3].index == counter_;
  }

  bool is_epilogue(const std::vector<Instr>& body, size_t i) const {
    return i + 10 < body.size() && body[i].op == Op::GlobalGet &&
           body[i].index == counter_ && body[i + 1].op == Op::LocalGet &&
           body[i + 2].op == Op::LocalGet && body[i + 3].op == Op::I32Sub &&
           body[i + 4].op == Op::I32Const && body[i + 5].op == Op::I32DivS &&
           body[i + 6].op == Op::I64ExtendI32S &&
           body[i + 7].op == Op::I64Const && body[i + 8].op == Op::I64Mul &&
           body[i + 9].op == Op::I64Add && body[i + 10].op == Op::GlobalSet &&
           body[i + 10].index == counter_;
  }

  bool offer(MutationKind kind, std::vector<Instr>& body, size_t i,
             const char* what) {
    MutationSite site;
    site.kind = kind;
    site.function = func_;
    std::ostringstream desc;
    desc << to_string(kind) << " in defined func " << func_
         << " at body offset " << i << " (" << what << ")";
    site.description = desc.str();
    done_ = offer_(site, &body, i);
    return done_;
  }

  void visit(std::vector<Instr>& body) {
    for (size_t i = 0; i < body.size() && !done_; ++i) {
      if (is_increment(body, i)) {
        if (offer(MutationKind::DropIncrement, body, i, "increment")) return;
        if (body[i + 1].imm != 0 &&
            offer(MutationKind::HalveIncrement, body, i, "increment")) {
          return;
        }
        if (i + 4 < body.size() && (wasm::is_branch(body[i + 4].op) ||
                                    body[i + 4].op == Op::Return ||
                                    body[i + 4].op == Op::Unreachable)) {
          if (offer(MutationKind::MoveIncrementAcrossBranch, body, i,
                    "increment before branch")) {
            return;
          }
        }
        if (offer(MutationKind::RetargetIncrement, body, i, "increment")) {
          return;
        }
      } else if (is_epilogue(body, i) && body[i + 7].imm != 0) {
        if (offer(MutationKind::CorruptHoistedWeight, body, i, "epilogue")) {
          return;
        }
      }
      visit(body[i].body);
      if (done_) return;
      visit(body[i].else_body);
    }
  }

  uint32_t counter_;
  std::function<bool(const MutationSite&, std::vector<Instr>*, size_t)> offer_;
  uint32_t func_ = 0;
  bool done_ = false;
};

}  // namespace

std::vector<MutationSite> enumerate_mutations(const wasm::Module& module,
                                              uint32_t counter_global) {
  std::vector<MutationSite> sites;
  wasm::Module copy = module;  // Walker takes mutable bodies; never mutates
  Walker walker(counter_global,
                [&](const MutationSite& site, std::vector<Instr>*, size_t) {
                  sites.push_back(site);
                  return false;
                });
  walker.walk(copy);
  return sites;
}

wasm::Module apply_mutation(const wasm::Module& module, uint32_t counter_global,
                            size_t index) {
  wasm::Module mutated = module;
  size_t ordinal = 0;
  bool applied = false;
  bool need_decoy = false;
  const uint32_t decoy_index = static_cast<uint32_t>(mutated.globals.size());

  Walker walker(
      counter_global,
      [&](const MutationSite& site, std::vector<Instr>* body, size_t i) {
        if (ordinal++ != index) return false;
        switch (site.kind) {
          case MutationKind::DropIncrement:
            body->erase(body->begin() + static_cast<ptrdiff_t>(i),
                        body->begin() + static_cast<ptrdiff_t>(i + 4));
            break;
          case MutationKind::HalveIncrement:
            (*body)[i + 1].imm = static_cast<uint64_t>(
                static_cast<int64_t>((*body)[i + 1].imm) / 2);
            break;
          case MutationKind::MoveIncrementAcrossBranch:
            // [inc0..inc3][branch] -> [branch][inc0..inc3]
            std::rotate(body->begin() + static_cast<ptrdiff_t>(i),
                        body->begin() + static_cast<ptrdiff_t>(i + 4),
                        body->begin() + static_cast<ptrdiff_t>(i + 5));
            break;
          case MutationKind::RetargetIncrement:
            (*body)[i + 3].index = decoy_index;
            need_decoy = true;
            break;
          case MutationKind::CorruptHoistedWeight:
            (*body)[i + 7].imm = (*body)[i + 7].imm / 2;
            break;
        }
        applied = true;
        return true;
      });
  walker.walk(mutated);

  if (!applied) {
    throw Error("apply_mutation: site index out of range");
  }
  if (need_decoy) {
    wasm::Global decoy;
    decoy.type = wasm::ValType::I64;
    decoy.mutable_ = true;
    decoy.init = Instr::i64c(0);
    decoy.name = "mutation_decoy";
    mutated.globals.push_back(std::move(decoy));
  }
  return mutated;
}

// ---- lowered-bytecode tampering ----

using interp::BcFunc;
using interp::BcInstr;
using interp::BcOp;

const char* to_string(LoweringMutationKind kind) {
  switch (kind) {
    case LoweringMutationKind::EditImmediate: return "edit-immediate";
    case LoweringMutationKind::DropBlockCharge: return "drop-block-charge";
    case LoweringMutationKind::DropFusedCounterCharge:
      return "drop-fused-counter-charge";
    case LoweringMutationKind::RetargetFusedBranch:
      return "retarget-fused-branch";
  }
  return "?";
}

namespace {

// Superops whose `b` field carries a fused constant operand, generated from
// bytecode.def so new const-carrying families join the corpus automatically.
bool carries_const_immediate(BcOp op) {
  switch (op) {
#define ACCTEE_BC_ANY(name)
#define ACCTEE_BC_K_I32(name, base, expr) case BcOp::name:
#define ACCTEE_BC_K_I64(name, base, expr) case BcOp::name:
#define ACCTEE_BC_LKOS_I32(name, base, expr) case BcOp::name:
#define ACCTEE_BC_LKOS_I64(name, base, expr) case BcOp::name:
#include "interp/bytecode.def"
#undef ACCTEE_BC_LKOS_I64
#undef ACCTEE_BC_LKOS_I32
#undef ACCTEE_BC_K_I64
#undef ACCTEE_BC_K_I32
#undef ACCTEE_BC_ANY
      return true;
    default:
      return false;
  }
}

// Offers every applicable mutation of `lowered` to `offer` in deterministic
// (function, pc, kind) order; stops when `offer` returns true.
void walk_lowering(std::vector<BcFunc>& lowered,
                   const std::function<bool(LoweringMutationKind, uint32_t,
                                            uint32_t, BcInstr&)>& offer) {
  for (uint32_t f = 0; f < lowered.size(); ++f) {
    for (uint32_t pc = 0; pc < lowered[f].code.size(); ++pc) {
      BcInstr& bi = lowered[f].code[pc];
      if (carries_const_immediate(bi.op)) {
        if (offer(LoweringMutationKind::EditImmediate, f, pc, bi)) return;
      }
      if (bi.op == BcOp::EnterBlock && (bi.a != 0 || bi.b != 0)) {
        if (offer(LoweringMutationKind::DropBlockCharge, f, pc, bi)) return;
      }
      if (bi.op == BcOp::GlobalAddConstI64 && bi.b != 0) {
        if (offer(LoweringMutationKind::DropFusedCounterCharge, f, pc, bi)) {
          return;
        }
      }
      if (interp::bc_is_super(bi.op) && interp::bc_has_branch_target(bi.op) &&
          bi.target_pc != 0) {
        if (offer(LoweringMutationKind::RetargetFusedBranch, f, pc, bi)) {
          return;
        }
      }
    }
  }
}

LoweringMutationSite make_site(LoweringMutationKind kind, uint32_t f,
                               uint32_t pc, const BcInstr& bi) {
  LoweringMutationSite site;
  site.kind = kind;
  site.function = f;
  site.pc = pc;
  std::ostringstream desc;
  desc << to_string(kind) << " in defined func " << f << " at bc pc " << pc
       << " (" << interp::to_string(bi.op) << ")";
  site.description = desc.str();
  return site;
}

}  // namespace

std::vector<LoweringMutationSite> enumerate_lowering_mutations(
    const std::vector<BcFunc>& lowered) {
  std::vector<LoweringMutationSite> sites;
  std::vector<BcFunc> copy = lowered;  // walker takes mutable instrs
  walk_lowering(copy, [&](LoweringMutationKind kind, uint32_t f, uint32_t pc,
                          BcInstr& bi) {
    sites.push_back(make_site(kind, f, pc, bi));
    return false;
  });
  return sites;
}

std::vector<BcFunc> apply_lowering_mutation(const std::vector<BcFunc>& lowered,
                                            size_t index) {
  std::vector<BcFunc> mutated = lowered;
  size_t ordinal = 0;
  bool applied = false;
  walk_lowering(mutated, [&](LoweringMutationKind kind, uint32_t, uint32_t,
                             BcInstr& bi) {
    if (ordinal++ != index) return false;
    switch (kind) {
      case LoweringMutationKind::EditImmediate:
        bi.b += 1;
        break;
      case LoweringMutationKind::DropBlockCharge:
        // The block executes for free: no instruction, cycle or histogram
        // charge at entry.
        bi.a = 0;
        bi.b = 0;
        bi.unwind = bi.c;  // empty hist range
        break;
      case LoweringMutationKind::DropFusedCounterCharge:
        bi.b = 0;
        break;
      case LoweringMutationKind::RetargetFusedBranch:
        bi.target_pc = 0;  // entry block: plausible, but wrong control flow
        break;
    }
    applied = true;
    return true;
  });
  if (!applied) {
    throw Error("apply_lowering_mutation: site index out of range");
  }
  return mutated;
}

}  // namespace acctee::analysis
