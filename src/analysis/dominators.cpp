#include "analysis/dominators.hpp"

#include <algorithm>

namespace acctee::analysis {

std::vector<uint32_t> reverse_postorder(const Cfg& cfg) {
  const uint32_t n = static_cast<uint32_t>(cfg.blocks.size());
  std::vector<uint32_t> order;
  if (n == 0) return order;
  order.reserve(n);
  std::vector<uint8_t> state(n, 0);  // 0 = unseen, 1 = on stack, 2 = done
  // Iterative DFS with an explicit successor cursor (bodies can be large).
  std::vector<std::pair<uint32_t, uint32_t>> stack;  // (block, next succ idx)
  stack.emplace_back(0, 0);
  state[0] = 1;
  while (!stack.empty()) {
    auto& [b, next] = stack.back();
    if (next < cfg.blocks[b].succs.size()) {
      uint32_t s = cfg.blocks[b].succs[next++];
      if (state[s] == 0) {
        state[s] = 1;
        stack.emplace_back(s, 0);
      }
    } else {
      state[b] = 2;
      order.push_back(b);
      stack.pop_back();
    }
  }
  std::reverse(order.begin(), order.end());
  return order;
}

std::vector<uint32_t> immediate_dominators(const Cfg& cfg) {
  const uint32_t n = static_cast<uint32_t>(cfg.blocks.size());
  std::vector<uint32_t> idom(n, kNoDominator);
  if (n == 0) return idom;

  std::vector<uint32_t> rpo = reverse_postorder(cfg);
  std::vector<uint32_t> rpo_index(n, UINT32_MAX);
  for (uint32_t i = 0; i < rpo.size(); ++i) rpo_index[rpo[i]] = i;

  auto intersect = [&](uint32_t a, uint32_t b) {
    while (a != b) {
      while (rpo_index[a] > rpo_index[b]) a = idom[a];
      while (rpo_index[b] > rpo_index[a]) b = idom[b];
    }
    return a;
  };

  idom[0] = 0;
  bool changed = true;
  while (changed) {
    changed = false;
    for (uint32_t b : rpo) {
      if (b == 0) continue;
      uint32_t new_idom = kNoDominator;
      for (uint32_t p : cfg.blocks[b].preds) {
        if (idom[p] == kNoDominator) continue;  // pred not processed/reachable
        new_idom = (new_idom == kNoDominator) ? p : intersect(new_idom, p);
      }
      if (new_idom != kNoDominator && idom[b] != new_idom) {
        idom[b] = new_idom;
        changed = true;
      }
    }
  }
  return idom;
}

bool dominates(const std::vector<uint32_t>& idom, uint32_t a, uint32_t b) {
  if (a >= idom.size() || b >= idom.size()) return false;
  if (idom[a] == kNoDominator || idom[b] == kNoDominator) return false;
  while (true) {
    if (b == a) return true;
    if (b == 0) return false;
    b = idom[b];
  }
}

}  // namespace acctee::analysis
