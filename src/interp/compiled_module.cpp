#include "interp/compiled_module.hpp"

#include "wasm/validator.hpp"

namespace acctee::interp {

CompiledModule::CompiledModule(wasm::Module module, CompileOptions options)
    : module_(std::move(module)) {
  if (options.validate) {
    wasm::validate(module_);
    validated_ = true;
  }
  flat_.reserve(module_.functions.size());
  for (const auto& func : module_.functions) {
    flat_.push_back(flatten(module_, func));
  }
  lower_options_ = options.lower;
  if (options.lower.enable) {
    lowered_ = lower_module(flat_, options.lower);
    lowering_digest_ = interp::lowering_digest(flat_, lowered_, options.lower);
    has_lowering_ = true;
  }
}

CompiledModule::CompiledModule(wasm::Module module,
                               std::vector<FlatFunc> optimised_flat,
                               std::vector<FlatFunc> baseline_flat,
                               CompileOptions options, bool validated)
    : module_(std::move(module)),
      flat_(std::move(optimised_flat)),
      baseline_flat_(std::move(baseline_flat)),
      validated_(validated),
      optimised_(true) {
  lower_options_ = options.lower;
  if (options.lower.enable) {
    lowered_ = lower_module(flat_, options.lower);
    lowering_digest_ = interp::lowering_digest(flat_, lowered_, options.lower);
    has_lowering_ = true;
  }
}

CompiledModulePtr compile(wasm::Module module,
                          CompiledModule::CompileOptions options) {
  return std::make_shared<const CompiledModule>(std::move(module), options);
}

}  // namespace acctee::interp
