// Flattening: compiles the structured tree IR into a compact, directly
// executable instruction array with pre-resolved branch targets and stack
// unwind depths. This happens once per function at instantiation time, so
// the hot interpreter loop never walks the tree or searches for labels.
#pragma once

#include <vector>

#include "wasm/ast.hpp"

namespace acctee::interp {

/// A pre-resolved branch destination.
struct BrTarget {
  uint32_t pc = 0;      // absolute index into FlatFunc::code
  uint32_t unwind = 0;  // operand-stack height (within frame) to unwind to
  uint8_t arity = 0;    // number of values the branch carries

  friend bool operator==(const BrTarget&, const BrTarget&) = default;
};

/// One executable instruction.
///
/// Field use by op kind:
///  * br / br_if:        `target` (pc/unwind/arity inline)
///  * if:                `target` = else-branch (or end) destination
///  * br_table:          `a` = index into FlatFunc::br_tables
///  * call/local/global: `a` = index
///  * memory ops:        `b` = static offset
///  * consts:            `b` = raw bits
///  * return:            `arity` = function result count
struct FlatOp {
  wasm::Op op = wasm::Op::Nop;
  bool synthetic = false;  // internal jump/halt: excluded from accounting
  uint8_t arity = 0;
  uint32_t a = 0;
  uint32_t target_pc = 0;
  uint32_t unwind = 0;
  uint64_t b = 0;
};

/// One entry of a block's compact per-opcode histogram delta.
struct BlockOpCount {
  wasm::Op op = wasm::Op::Nop;
  uint32_t count = 0;
};

/// Accounting summary of one basic block: a maximal straight-line run of
/// FlatOps that control flow can only enter at the first op and only leave
/// after the last. Charged wholesale on block entry by the interpreter
/// (paper Fig. 4 batching, applied to the simulator itself) instead of one
/// bookkeeping update per instruction.
///
/// Block boundaries (computed once at flatten time):
///  * every branch target starts a block,
///  * every control transfer (br/br_if/br_table/if/return/call/
///    call_indirect/unreachable) and every synthetic op ends one,
///  * `memory.grow` ends one, because it observes the instruction counter
///    mid-execution (the memory-size integral) and must see exactly the
///    serial count.
struct BlockCost {
  uint32_t end_pc = 0;        // one past the last op of the block
  uint32_t instructions = 0;  // accounted (non-synthetic) ops in the block
  uint64_t cycles = 0;        // summed per-opcode base costs
  // Histogram delta: [hist_begin, hist_end) into FlatFunc::block_hist.
  uint32_t hist_begin = 0;
  uint32_t hist_end = 0;
};

/// A flattened function body.
struct FlatFunc {
  uint32_t type_index = 0;
  std::vector<wasm::ValType> local_types;  // params then locals
  uint32_t num_params = 0;
  std::vector<FlatOp> code;  // terminated by a synthetic return
  std::vector<std::vector<BrTarget>> br_tables;
  // Basic-block accounting summaries (code order). `block_index[pc]` maps
  // every pc to the id of the block containing it; the interpreter only
  // consults it at block heads. `block_hist` is the flattened backing store
  // of all blocks' histogram deltas (one allocation per function).
  std::vector<BlockCost> blocks;
  std::vector<uint32_t> block_index;
  std::vector<BlockOpCount> block_hist;
};

/// Flattens one defined function of a *validated* module.
FlatFunc flatten(const wasm::Module& module, const wasm::Function& func);

}  // namespace acctee::interp
