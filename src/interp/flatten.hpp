// Flattening: compiles the structured tree IR into a compact, directly
// executable instruction array with pre-resolved branch targets and stack
// unwind depths. This happens once per function at instantiation time, so
// the hot interpreter loop never walks the tree or searches for labels.
#pragma once

#include <vector>

#include "wasm/ast.hpp"

namespace acctee::interp {

/// A pre-resolved branch destination.
struct BrTarget {
  uint32_t pc = 0;      // absolute index into FlatFunc::code
  uint32_t unwind = 0;  // operand-stack height (within frame) to unwind to
  uint8_t arity = 0;    // number of values the branch carries
};

/// One executable instruction.
///
/// Field use by op kind:
///  * br / br_if:        `target` (pc/unwind/arity inline)
///  * if:                `target` = else-branch (or end) destination
///  * br_table:          `a` = index into FlatFunc::br_tables
///  * call/local/global: `a` = index
///  * memory ops:        `b` = static offset
///  * consts:            `b` = raw bits
///  * return:            `arity` = function result count
struct FlatOp {
  wasm::Op op = wasm::Op::Nop;
  bool synthetic = false;  // internal jump/halt: excluded from accounting
  uint8_t arity = 0;
  uint32_t a = 0;
  uint32_t target_pc = 0;
  uint32_t unwind = 0;
  uint64_t b = 0;
};

/// A flattened function body.
struct FlatFunc {
  uint32_t type_index = 0;
  std::vector<wasm::ValType> local_types;  // params then locals
  uint32_t num_params = 0;
  std::vector<FlatOp> code;  // terminated by a synthetic return
  std::vector<std::vector<BrTarget>> br_tables;
};

/// Flattens one defined function of a *validated* module.
FlatFunc flatten(const wasm::Module& module, const wasm::Function& func);

}  // namespace acctee::interp
