// Flattening: compiles the structured tree IR into a compact, directly
// executable instruction array with pre-resolved branch targets and stack
// unwind depths. This happens once per function at instantiation time, so
// the hot interpreter loop never walks the tree or searches for labels.
#pragma once

#include <vector>

#include "wasm/ast.hpp"

namespace acctee::interp {

/// A pre-resolved branch destination.
struct BrTarget {
  uint32_t pc = 0;      // absolute index into FlatFunc::code
  uint32_t unwind = 0;  // operand-stack height (within frame) to unwind to
  uint8_t arity = 0;    // number of values the branch carries

  friend bool operator==(const BrTarget&, const BrTarget&) = default;
};

/// One executable instruction.
///
/// Field use by op kind:
///  * br / br_if:        `target` (pc/unwind/arity inline)
///  * if:                `target` = else-branch (or end) destination
///  * br_table:          `a` = index into FlatFunc::br_tables
///  * call/local/global: `a` = index
///  * memory ops:        `b` = static offset
///  * consts:            `b` = raw bits
///  * return:            `arity` = function result count
struct FlatOp {
  wasm::Op op = wasm::Op::Nop;
  bool synthetic = false;  // internal jump/halt: excluded from accounting
  uint8_t arity = 0;
  uint32_t a = 0;
  uint32_t target_pc = 0;
  uint32_t unwind = 0;
  uint64_t b = 0;
};

/// One entry of a block's compact per-opcode histogram delta.
struct BlockOpCount {
  wasm::Op op = wasm::Op::Nop;
  uint32_t count = 0;

  friend bool operator==(const BlockOpCount&, const BlockOpCount&) = default;
};

/// Marker tag carried in FlatOp::b by the synthetic Op::Nop that heads an
/// optimisation region (analysis/opt, DESIGN.md §19). Real Nops always carry
/// b == 0, so the interpreter's Nop handler can detect markers with one
/// compare and the binary decoder never learns a new opcode.
inline constexpr uint64_t kRegionEnterTag = 1;

enum class OptRegionKind : uint8_t {
  FoldLoop = 1,      // const-trip single-block loop folded to one charge
  FoldNest = 2,      // perfect two-level counted nest folded to one charge
  CoalesceCall = 3,  // tiny leaf call inlined, one fused increment
};

/// A guarded fast-path accounting region installed by the optimisation
/// pipeline (analysis/opt). Layout in FlatFunc::code:
///
///   enter_pc:                synthetic Nop, b = kRegionEnterTag,
///                            a = region index, target_pc = slow_begin
///   [fast_begin, fast_end):  the fast body — synthetic copies of the
///                            original ops minus every counter increment;
///                            they execute but are never accounted
///   fast_end:                the join (original continuation)
///   [slow_begin, slow_end):  verbatim copy of the original (baseline) ops,
///                            non-synthetic, ending in a synthetic Br back
///                            to the join
///
/// The enter marker is a guard-plus-charge: when the region's statically
/// known accounting span would cross a checkpoint, the instruction limit,
/// the call-depth limit, or serial accounting is in force, control jumps to
/// the slow copy, which accounts exactly like the untransformed module. On
/// the fast path the whole span is charged wholesale (instructions, cycles,
/// per-op histogram, weighted-counter global) before the body runs, so
/// every observable cumulative total — ExecStats, checkpoint firings, the
/// signed ledger — is bit-identical to opt_level=0. A trap inside a fast
/// body leaves the full region charge standing (a bounded, provider-
/// favourable over-charge; see DESIGN.md §19).
struct OptRegion {
  OptRegionKind kind = OptRegionKind::FoldLoop;
  uint32_t enter_pc = 0;
  uint32_t fast_begin = 0;
  uint32_t fast_end = 0;
  uint32_t slow_begin = 0;
  uint32_t slow_end = 0;
  uint32_t callee = 0;        // CoalesceCall: callee index (full index space)
  uint64_t trips = 1;         // Fold*: derived constant trip count
  uint64_t instr_total = 0;   // accounted ops the slow path would execute
  uint64_t cycles_total = 0;  // summed per-opcode base costs of the span
  uint64_t counter_amount = 0;     // folded weighted-counter bump
  uint32_t counter_global = 0;
  uint32_t calls_folded = 0;   // × CostModel call overhead at charge time
  uint32_t frames_needed = 0;  // CoalesceCall: guard the call-depth limit
  // Histogram of the span: [hist_begin, hist_end) into FlatFunc::region_hist.
  uint32_t hist_begin = 0;
  uint32_t hist_end = 0;

  friend bool operator==(const OptRegion&, const OptRegion&) = default;
};

/// Accounting summary of one basic block: a maximal straight-line run of
/// FlatOps that control flow can only enter at the first op and only leave
/// after the last. Charged wholesale on block entry by the interpreter
/// (paper Fig. 4 batching, applied to the simulator itself) instead of one
/// bookkeeping update per instruction.
///
/// Block boundaries (computed once at flatten time):
///  * every branch target starts a block,
///  * every control transfer (br/br_if/br_table/if/return/call/
///    call_indirect/unreachable) and every synthetic op ends one,
///  * `memory.grow` ends one, because it observes the instruction counter
///    mid-execution (the memory-size integral) and must see exactly the
///    serial count.
struct BlockCost {
  uint32_t end_pc = 0;        // one past the last op of the block
  uint32_t instructions = 0;  // accounted (non-synthetic) ops in the block
  uint64_t cycles = 0;        // summed per-opcode base costs
  // Histogram delta: [hist_begin, hist_end) into FlatFunc::block_hist.
  uint32_t hist_begin = 0;
  uint32_t hist_end = 0;
};

/// A flattened function body.
struct FlatFunc {
  uint32_t type_index = 0;
  std::vector<wasm::ValType> local_types;  // params then locals
  uint32_t num_params = 0;
  std::vector<FlatOp> code;  // terminated by a synthetic return
  std::vector<std::vector<BrTarget>> br_tables;
  // Basic-block accounting summaries (code order). `block_index[pc]` maps
  // every pc to the id of the block containing it; the interpreter only
  // consults it at block heads. `block_hist` is the flattened backing store
  // of all blocks' histogram deltas (one allocation per function).
  std::vector<BlockCost> blocks;
  std::vector<uint32_t> block_index;
  std::vector<BlockOpCount> block_hist;
  // Optimisation regions (analysis/opt, DESIGN.md §19), in enter_pc order.
  // Empty unless the opt pipeline transformed this function. `region_hist`
  // is the flattened backing store of all regions' charge histograms.
  std::vector<OptRegion> regions;
  std::vector<BlockOpCount> region_hist;
};

/// True for the synthetic Nop marker heading an optimisation region.
inline bool is_region_enter(const FlatOp& op) {
  return op.synthetic && op.op == wasm::Op::Nop && op.b == kRegionEnterTag;
}

/// Flattens one defined function of a *validated* module.
FlatFunc flatten(const wasm::Module& module, const wasm::Function& func);

/// Recomputes the basic-block partition and per-block accounting summaries
/// of `ff` from its code, branch tables and regions. flatten() calls this;
/// the optimisation pipeline (analysis/opt) re-calls it after editing code.
void compute_block_costs(FlatFunc& ff);

}  // namespace acctee::interp
