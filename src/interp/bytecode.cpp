#include "interp/bytecode.hpp"

namespace acctee::interp {

const char* to_string(BcOp op) {
  switch (op) {
#define ACCTEE_OP(name, text, binary, imm, sig, cost) \
  case BcOp::name:                                    \
    return #name;
#include "wasm/opcodes.def"
#undef ACCTEE_OP
#define ACCTEE_BC_ANY(name) \
  case BcOp::name:          \
    return #name;
#include "interp/bytecode.def"
#undef ACCTEE_BC_ANY
  }
  return "<invalid BcOp>";
}

bool bc_has_branch_target(BcOp op) {
  switch (op) {
    case BcOp::If:
    case BcOp::Br:
    case BcOp::BrIf:
#define ACCTEE_BC_ANY(name)
#define ACCTEE_BC_CMPBR(name, base, expr) case BcOp::name:
#define ACCTEE_BC_CMPBR_EQZ(name, base) case BcOp::name:
#define ACCTEE_BC_LLCMPBR(name, base, expr) case BcOp::name:
#include "interp/bytecode.def"
#undef ACCTEE_BC_LLCMPBR
#undef ACCTEE_BC_CMPBR_EQZ
#undef ACCTEE_BC_CMPBR
#undef ACCTEE_BC_ANY
      return true;
    default:
      return false;
  }
}

}  // namespace acctee::interp
