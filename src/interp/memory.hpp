// Linear memory: the contiguous, bounds-checked heap of a Wasm instance.
//
// Bounds checks on every access are the software-fault-isolation half of
// AccTEE's two-way sandbox (paper §2.3): the workload cannot read or write
// anything outside its own linear memory.
#pragma once

#include <cstdint>
#include <cstring>

#include "common/bytes.hpp"
#include "common/error.hpp"
#include "wasm/types.hpp"

namespace acctee::interp {

class LinearMemory {
 public:
  LinearMemory(uint32_t min_pages, std::optional<uint32_t> max_pages)
      : max_pages_(max_pages.value_or(65536)), data_(min_pages * wasm::kPageSize) {
    if (min_pages > max_pages_) {
      throw LinkError("memory min exceeds max");
    }
  }

  uint32_t pages() const {
    return static_cast<uint32_t>(data_.size() / wasm::kPageSize);
  }
  uint64_t size_bytes() const { return data_.size(); }
  uint32_t max_pages() const { return max_pages_; }

  /// Restores the as-constructed state — `min_pages` pages, all zero —
  /// without releasing the backing allocation (the point of instance
  /// reuse: a recycled memory costs a memset, not an allocation). Callers
  /// re-apply data segments afterwards, exactly as instantiation does.
  void reset(uint32_t min_pages) {
    data_.assign(static_cast<size_t>(min_pages) * wasm::kPageSize, 0);
  }

  /// memory.grow semantics: returns the previous page count, or -1 (as u32)
  /// if the request exceeds the maximum.
  int32_t grow(uint32_t delta_pages) {
    uint64_t old_pages = pages();
    uint64_t new_pages = old_pages + delta_pages;
    if (new_pages > max_pages_) return -1;
    data_.resize(new_pages * wasm::kPageSize);
    return static_cast<int32_t>(old_pages);
  }

  /// Bounds check for an access of `size` bytes at effective address
  /// `addr` + `offset`; traps on overflow or out-of-bounds.
  uint64_t check(uint64_t addr, uint64_t offset, uint64_t size) const {
    uint64_t effective = addr + offset;
    if (effective + size > data_.size() || effective + size < effective) {
      throw TrapError("out-of-bounds memory access at " +
                      std::to_string(effective));
    }
    return effective;
  }

  template <typename T>
  T load(uint64_t addr, uint64_t offset) const {
    uint64_t ea = check(addr, offset, sizeof(T));
    T v;
    std::memcpy(&v, data_.data() + ea, sizeof(T));
    return v;
  }

  template <typename T>
  void store(uint64_t addr, uint64_t offset, T value) {
    uint64_t ea = check(addr, offset, sizeof(T));
    std::memcpy(data_.data() + ea, &value, sizeof(T));
  }

  /// Raw byte access for host functions and data-segment initialisation.
  void write_bytes(uint64_t addr, BytesView bytes) {
    uint64_t ea = check(addr, 0, bytes.size());
    std::memcpy(data_.data() + ea, bytes.data(), bytes.size());
  }
  Bytes read_bytes(uint64_t addr, uint64_t len) const {
    uint64_t ea = check(addr, 0, len);
    return Bytes(data_.begin() + ea, data_.begin() + ea + len);
  }

  uint8_t* data() { return data_.data(); }
  const uint8_t* data() const { return data_.data(); }

 private:
  uint32_t max_pages_;
  Bytes data_;
};

}  // namespace acctee::interp
