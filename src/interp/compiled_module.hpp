// The prepare-once half of module execution (paper §3.3: instrumentation —
// and by extension all per-module preparation — happens once and is reused
// across many invocations).
//
// A CompiledModule is the immutable artifact of the parse → validate →
// flatten pipeline: the structured AST plus every defined function compiled
// to the interpreter's flat executable form. It is produced once per module
// (per deployment, not per request) and shared between any number of
// concurrently running Instances via std::shared_ptr<const CompiledModule>.
// Instances borrow it read-only and own only their mutable state (operand
// stack, linear memory, globals, table, counters, cache simulator), which is
// what makes per-request instantiation cheap enough for FaaS request rates.
#pragma once

#include <memory>
#include <vector>

#include "interp/flatten.hpp"
#include "interp/lower.hpp"
#include "wasm/ast.hpp"

namespace acctee::interp {

class CompiledModule {
 public:
  struct CompileOptions {
    /// Run the validator before flattening. The public compile() entry point
    /// defaults to true; the legacy Instance by-value constructor compiles
    /// with false to preserve its historical "caller validates" contract.
    bool validate = true;
    /// Lowering stage (flatten → bytecode, DESIGN.md §15). Enabled by
    /// default in every build — the lowering digest is part of the AE's
    /// verify-then-bind check even when the bytecode execution backends are
    /// not compiled in (CMake ACCTEE_BYTECODE).
    LowerOptions lower;
  };

  /// Flattens (and by default validates) `module`. Throws ValidationError if
  /// validation is requested and fails. Prefer the free compile() helpers.
  CompiledModule(wasm::Module module, CompileOptions options);

  /// Builds the artifact from an externally transformed flat form — the
  /// optimisation pipeline (analysis/opt, DESIGN.md §19). `optimised_flat`
  /// is what lowering and execution use; `baseline_flat` keeps the
  /// canonical (untransformed) flattening for the §14 counter-equivalence
  /// proof. The module itself is byte-identical to the untransformed one —
  /// optimisation happens strictly after decode+validate, so `validated`
  /// carries the caller's verdict for that module.
  CompiledModule(wasm::Module module, std::vector<FlatFunc> optimised_flat,
                 std::vector<FlatFunc> baseline_flat, CompileOptions options,
                 bool validated);

  CompiledModule(const CompiledModule&) = delete;
  CompiledModule& operator=(const CompiledModule&) = delete;

  const wasm::Module& module() const { return module_; }
  const std::vector<FlatFunc>& flat() const { return flat_; }
  const FlatFunc& flat_func(uint32_t defined_index) const {
    return flat_[defined_index];
  }
  /// Validation verdict: true iff the validator ran (and passed) on this
  /// exact module before flattening.
  bool validated() const { return validated_; }

  /// True iff the lowering stage ran (CompileOptions::lower.enable).
  bool has_lowering() const { return has_lowering_; }
  /// Lowered (bytecode) function bodies, parallel to flat(). Empty when
  /// has_lowering() is false.
  const std::vector<BcFunc>& lowered() const { return lowered_; }
  const BcFunc& lowered_func(uint32_t defined_index) const {
    return lowered_[defined_index];
  }
  /// True iff this artifact was built through the optimisation pipeline.
  bool optimised() const { return optimised_; }
  /// The canonical (untransformed) flattening — the baseline the §14 proof
  /// runs against. Empty unless optimised().
  const std::vector<FlatFunc>& baseline_flat() const { return baseline_flat_; }

  /// The options the lowering ran with (needed to re-derive it).
  const LowerOptions& lower_options() const { return lower_options_; }
  /// Canonical digest binding the lowered form to the flattened form
  /// (interp::lowering_digest). Zero when has_lowering() is false.
  const crypto::Digest& lowering_digest() const { return lowering_digest_; }

 private:
  wasm::Module module_;
  std::vector<FlatFunc> flat_;
  std::vector<FlatFunc> baseline_flat_;
  std::vector<BcFunc> lowered_;
  LowerOptions lower_options_;
  crypto::Digest lowering_digest_{};
  bool validated_ = false;
  bool has_lowering_ = false;
  bool optimised_ = false;
};

/// Shared ownership handle; every borrower holds one, so the artifact lives
/// exactly as long as the last Instance (or cache entry) using it.
using CompiledModulePtr = std::shared_ptr<const CompiledModule>;

/// Entry point of the shared pipeline: validate + flatten once, share many.
CompiledModulePtr compile(wasm::Module module,
                          CompiledModule::CompileOptions options = {});

}  // namespace acctee::interp
