#include "interp/lower.hpp"

#include <optional>
#include <stdexcept>

#include "common/bytes.hpp"

namespace acctee::interp {

namespace {

using wasm::Op;

// Fusion pattern tables, generated from bytecode.def so the lowerer, the
// enum and the handlers can never disagree about which base op feeds which
// superinstruction.

std::optional<BcOp> cmpbr_for(Op op) {
  switch (op) {
#define ACCTEE_BC_ANY(name)
#define ACCTEE_BC_CMPBR(name, base, expr) \
  case Op::base:                          \
    return BcOp::name;
#define ACCTEE_BC_CMPBR_EQZ(name, base) \
  case Op::base:                        \
    return BcOp::name;
#include "interp/bytecode.def"
#undef ACCTEE_BC_CMPBR_EQZ
#undef ACCTEE_BC_CMPBR
#undef ACCTEE_BC_ANY
    default:
      return std::nullopt;
  }
}

std::optional<BcOp> llcmpbr_for(Op op) {
  switch (op) {
#define ACCTEE_BC_ANY(name)
#define ACCTEE_BC_LLCMPBR(name, base, expr) \
  case Op::base:                            \
    return BcOp::name;
#include "interp/bytecode.def"
#undef ACCTEE_BC_LLCMPBR
#undef ACCTEE_BC_ANY
    default:
      return std::nullopt;
  }
}

std::optional<BcOp> l2_for(Op op) {
  switch (op) {
#define ACCTEE_BC_ANY(name)
#define ACCTEE_BC_L2(name, base, expr) \
  case Op::base:                       \
    return BcOp::name;
#define ACCTEE_BC_L2_I32 ACCTEE_BC_L2
#define ACCTEE_BC_L2_I64 ACCTEE_BC_L2
#define ACCTEE_BC_L2_F32 ACCTEE_BC_L2
#define ACCTEE_BC_L2_F64 ACCTEE_BC_L2
#include "interp/bytecode.def"
#undef ACCTEE_BC_L2_F64
#undef ACCTEE_BC_L2_F32
#undef ACCTEE_BC_L2_I64
#undef ACCTEE_BC_L2_I32
#undef ACCTEE_BC_L2
#undef ACCTEE_BC_ANY
    default:
      return std::nullopt;
  }
}

std::optional<BcOp> k_i32_for(Op op) {
  switch (op) {
#define ACCTEE_BC_ANY(name)
#define ACCTEE_BC_K_I32(name, base, expr) \
  case Op::base:                          \
    return BcOp::name;
#include "interp/bytecode.def"
#undef ACCTEE_BC_K_I32
#undef ACCTEE_BC_ANY
    default:
      return std::nullopt;
  }
}

std::optional<BcOp> k_i64_for(Op op) {
  switch (op) {
#define ACCTEE_BC_ANY(name)
#define ACCTEE_BC_K_I64(name, base, expr) \
  case Op::base:                          \
    return BcOp::name;
#include "interp/bytecode.def"
#undef ACCTEE_BC_K_I64
#undef ACCTEE_BC_ANY
    default:
      return std::nullopt;
  }
}

std::optional<BcOp> ggos_for(Op op) {
  switch (op) {
#define ACCTEE_BC_ANY(name)
#define ACCTEE_BC_GGOS(name, base, expr) \
  case Op::base:                         \
    return BcOp::name;
#define ACCTEE_BC_GGOS_I32 ACCTEE_BC_GGOS
#define ACCTEE_BC_GGOS_I64 ACCTEE_BC_GGOS
#define ACCTEE_BC_GGOS_F32 ACCTEE_BC_GGOS
#define ACCTEE_BC_GGOS_F64 ACCTEE_BC_GGOS
#include "interp/bytecode.def"
#undef ACCTEE_BC_GGOS_F64
#undef ACCTEE_BC_GGOS_F32
#undef ACCTEE_BC_GGOS_I64
#undef ACCTEE_BC_GGOS_I32
#undef ACCTEE_BC_GGOS
#undef ACCTEE_BC_ANY
    default:
      return std::nullopt;
  }
}

std::optional<BcOp> lkos_i32_for(Op op) {
  switch (op) {
#define ACCTEE_BC_ANY(name)
#define ACCTEE_BC_LKOS_I32(name, base, expr) \
  case Op::base:                             \
    return BcOp::name;
#include "interp/bytecode.def"
#undef ACCTEE_BC_LKOS_I32
#undef ACCTEE_BC_ANY
    default:
      return std::nullopt;
  }
}

std::optional<BcOp> lkos_i64_for(Op op) {
  switch (op) {
#define ACCTEE_BC_ANY(name)
#define ACCTEE_BC_LKOS_I64(name, base, expr) \
  case Op::base:                             \
    return BcOp::name;
#include "interp/bytecode.def"
#undef ACCTEE_BC_LKOS_I64
#undef ACCTEE_BC_ANY
    default:
      return std::nullopt;
  }
}

// Tries to fuse a superinstruction starting at flat pc `i` (never reaching
// past the block end `end`); appends it to `out` and returns the number of
// flat ops consumed, or 0 when nothing matched. Synthetic ops never take
// part in a fusion — except inside an optimisation-region fast body
// (`fast`), whose synthetic op copies keep their original semantics and are
// only ever executed fully batched, so the fused forms behave identically.
// Longest patterns win.
uint32_t try_fuse(const FlatFunc& ff, uint32_t i, uint32_t end,
                  const std::vector<bool>& fast, BcFunc& out) {
  const std::vector<FlatOp>& c = ff.code;
  const uint32_t n = end - i;
  auto real = [&](uint32_t k) {
    return !c[i + k].synthetic || (!fast.empty() && fast[i + k]);
  };

  if (n >= 4 && real(0) && real(1) && real(2) && real(3)) {
    const FlatOp& o0 = c[i];
    const FlatOp& o1 = c[i + 1];
    const FlatOp& o2 = c[i + 2];
    const FlatOp& o3 = c[i + 3];
    // [global.get g][i64.const w][i64.add][global.set g] — the instrumented
    // counter increment (and any other constant global bump).
    if (o0.op == Op::GlobalGet && o1.op == Op::I64Const &&
        o2.op == Op::I64Add && o3.op == Op::GlobalSet && o3.a == o0.a) {
      BcInstr bi;
      bi.op = BcOp::GlobalAddConstI64;
      bi.a = o0.a;
      bi.b = o1.b;
      bi.flat_pc = i;
      bi.flat_end = i + 4;
      out.code.push_back(bi);
      return 4;
    }
    if (o0.op == Op::LocalGet && o1.op == Op::LocalGet) {
      // [local.get][local.get][cmp][br_if] — the loop back-edge shape.
      if (o3.op == Op::BrIf) {
        if (auto sop = llcmpbr_for(o2.op)) {
          BcInstr bi;
          bi.op = *sop;
          bi.a = o0.a;
          bi.c = o1.a;
          bi.target_pc = o3.target_pc;
          bi.unwind = o3.unwind;
          bi.arity = o3.arity;
          bi.flat_pc = i;
          bi.flat_end = i + 4;
          out.code.push_back(bi);
          return 4;
        }
      }
      // [local.get][local.get][binop][local.set]
      if (o3.op == Op::LocalSet) {
        if (auto sop = ggos_for(o2.op)) {
          BcInstr bi;
          bi.op = *sop;
          bi.a = o0.a;
          bi.c = o1.a;
          bi.unwind = o3.a;
          bi.flat_pc = i;
          bi.flat_end = i + 4;
          out.code.push_back(bi);
          return 4;
        }
      }
    }
    // [local.get][const][binop][local.set] — induction updates.
    if (o0.op == Op::LocalGet && o3.op == Op::LocalSet) {
      std::optional<BcOp> sop;
      if (o1.op == Op::I32Const) {
        sop = lkos_i32_for(o2.op);
      } else if (o1.op == Op::I64Const) {
        sop = lkos_i64_for(o2.op);
      }
      if (sop) {
        BcInstr bi;
        bi.op = *sop;
        bi.a = o0.a;
        bi.b = o1.b;
        bi.unwind = o3.a;
        bi.flat_pc = i;
        bi.flat_end = i + 4;
        out.code.push_back(bi);
        return 4;
      }
    }
  }

  if (n >= 2 && real(0) && real(1)) {
    const FlatOp& o0 = c[i];
    const FlatOp& o1 = c[i + 1];
    // [cmp][br_if]
    if (o1.op == Op::BrIf) {
      if (auto sop = cmpbr_for(o0.op)) {
        BcInstr bi;
        bi.op = *sop;
        bi.target_pc = o1.target_pc;
        bi.unwind = o1.unwind;
        bi.arity = o1.arity;
        bi.flat_pc = i;
        bi.flat_end = i + 2;
        out.code.push_back(bi);
        return 2;
      }
    }
    // [local.get][binop] — local as the right-hand operand.
    if (o0.op == Op::LocalGet) {
      if (auto sop = l2_for(o1.op)) {
        BcInstr bi;
        bi.op = *sop;
        bi.a = o0.a;
        bi.flat_pc = i;
        bi.flat_end = i + 2;
        out.code.push_back(bi);
        return 2;
      }
    }
    // [const][binop] — const as the right-hand operand.
    if (o0.op == Op::I32Const) {
      if (auto sop = k_i32_for(o1.op)) {
        BcInstr bi;
        bi.op = *sop;
        bi.b = o0.b;
        bi.flat_pc = i;
        bi.flat_end = i + 2;
        out.code.push_back(bi);
        return 2;
      }
    }
    if (o0.op == Op::I64Const) {
      if (auto sop = k_i64_for(o1.op)) {
        BcInstr bi;
        bi.op = *sop;
        bi.b = o0.b;
        bi.flat_pc = i;
        bi.flat_end = i + 2;
        out.code.push_back(bi);
        return 2;
      }
    }
  }
  return 0;
}

}  // namespace

BcFunc lower_function(const FlatFunc& ff, const LowerOptions& options) {
  BcFunc out;
  out.code.reserve(ff.code.size() + ff.blocks.size());
  // bc pc of each flat block head (branches land on the EnterBlock).
  std::vector<uint32_t> bc_of_flat(ff.code.size(), UINT32_MAX);

  // Optimisation-region fast-body pcs: those blocks carry no accounting (the
  // region enter charged the whole span), so no EnterBlock is emitted for
  // them — branches land directly on the first lowered op.
  std::vector<bool> fast;
  if (!ff.regions.empty()) {
    fast.assign(ff.code.size(), false);
    for (const OptRegion& r : ff.regions) {
      for (uint32_t p = r.fast_begin; p < r.fast_end; ++p) fast[p] = true;
    }
  }

  uint32_t start = 0;
  for (const BlockCost& blk : ff.blocks) {
    bc_of_flat[start] = static_cast<uint32_t>(out.code.size());
    if (fast.empty() || !fast[start]) {
      BcInstr eb;
      eb.op = BcOp::EnterBlock;
      eb.a = blk.instructions;
      eb.b = blk.cycles;
      eb.c = blk.hist_begin;
      eb.unwind = blk.hist_end;
      // Flat end of the block, for the trap un-charge bookkeeping
      // (charged_end_pc_). Not a branch target — never remapped.
      eb.target_pc = blk.end_pc;
      eb.flat_pc = start;  // empty flat range: EnterBlock is pure bookkeeping
      eb.flat_end = start;
      out.code.push_back(eb);
    }

    uint32_t i = start;
    while (i < blk.end_pc) {
      if (options.fuse) {
        if (uint32_t consumed = try_fuse(ff, i, blk.end_pc, fast, out)) {
          i += consumed;
          continue;
        }
      }
      const FlatOp& f = ff.code[i];
      BcInstr bi;
      // Base ops share enumerator order between wasm::Op and BcOp.
      bi.op = static_cast<BcOp>(static_cast<uint16_t>(f.op));
      bi.arity = f.arity;
      bi.a = f.a;
      bi.target_pc = f.target_pc;
      bi.unwind = f.unwind;
      bi.b = f.b;
      bi.flat_pc = i;
      bi.flat_end = i + 1;
      if (is_region_enter(f)) {
        // The marker's flat range is empty: it is pure bookkeeping to the
        // serial fallback, exactly like EnterBlock.
        bi.flat_end = i;
      }
      out.code.push_back(bi);
      ++i;
    }
    start = blk.end_pc;
  }

  // Remap branch targets from flat pcs to bytecode pcs. Every target is a
  // block head by construction (compute_block_costs marks them), so the map
  // is always populated. Region-enter markers lower to Nop — not a branch
  // op, but their slow-path target needs the same remap.
  for (BcInstr& bi : out.code) {
    const bool region_marker = bi.op == BcOp::Nop && bi.b != 0;
    if (!bc_has_branch_target(bi.op) && !region_marker) continue;
    uint32_t mapped = bc_of_flat.at(bi.target_pc);
    if (mapped == UINT32_MAX) {
      throw std::logic_error("lower: branch target is not a block head");
    }
    bi.target_pc = mapped;
  }
  out.br_tables = ff.br_tables;
  for (auto& table : out.br_tables) {
    for (BrTarget& t : table) {
      uint32_t mapped = bc_of_flat.at(t.pc);
      if (mapped == UINT32_MAX) {
        throw std::logic_error("lower: br_table target is not a block head");
      }
      t.pc = mapped;
    }
  }
  return out;
}

std::vector<BcFunc> lower_module(const std::vector<FlatFunc>& flat,
                                 const LowerOptions& options) {
  std::vector<BcFunc> out;
  out.reserve(flat.size());
  for (const FlatFunc& ff : flat) out.push_back(lower_function(ff, options));
  return out;
}

crypto::Digest lowering_digest(const std::vector<FlatFunc>& flat,
                               const std::vector<BcFunc>& lowered,
                               const LowerOptions& options) {
  crypto::Sha256 ctx;
  // v2 extends v1 with the optimisation-region tables; a module with no
  // regions keeps the exact v1 bytes so opt_level=0 digests are unchanged.
  bool any_regions = false;
  for (const FlatFunc& ff : flat) {
    if (!ff.regions.empty()) any_regions = true;
  }
  const std::string_view kDomain =
      any_regions ? "acctee.lowering.v2" : "acctee.lowering.v1";
  ctx.update(BytesView(reinterpret_cast<const uint8_t*>(kDomain.data()),
                       kDomain.size()));
  Bytes buf;
  auto u8 = [&](uint8_t v) { buf.push_back(v); };
  auto u32 = [&](uint32_t v) { append_u32le(buf, v); };
  auto u64 = [&](uint64_t v) { append_u64le(buf, v); };
  auto tables = [&](const std::vector<std::vector<BrTarget>>& ts) {
    u32(static_cast<uint32_t>(ts.size()));
    for (const auto& table : ts) {
      u32(static_cast<uint32_t>(table.size()));
      for (const BrTarget& t : table) {
        u32(t.pc);
        u32(t.unwind);
        u8(t.arity);
      }
    }
  };

  u8(options.fuse ? 1 : 0);
  u32(static_cast<uint32_t>(flat.size()));
  u32(static_cast<uint32_t>(lowered.size()));
  ctx.update(buf);
  for (size_t f = 0; f < flat.size(); ++f) {
    buf.clear();
    const FlatFunc& ff = flat[f];
    u32(static_cast<uint32_t>(ff.code.size()));
    for (const FlatOp& op : ff.code) {
      u8(static_cast<uint8_t>(op.op));
      u8(op.synthetic ? 1 : 0);
      u8(op.arity);
      u32(op.a);
      u32(op.target_pc);
      u32(op.unwind);
      u64(op.b);
    }
    tables(ff.br_tables);
    u32(static_cast<uint32_t>(ff.blocks.size()));
    for (const BlockCost& blk : ff.blocks) {
      u32(blk.end_pc);
      u32(blk.instructions);
      u64(blk.cycles);
      u32(blk.hist_begin);
      u32(blk.hist_end);
    }
    u32(static_cast<uint32_t>(ff.block_hist.size()));
    for (const BlockOpCount& h : ff.block_hist) {
      u8(static_cast<uint8_t>(h.op));
      u32(h.count);
    }
    if (any_regions) {
      u32(static_cast<uint32_t>(ff.regions.size()));
      for (const OptRegion& r : ff.regions) {
        u8(static_cast<uint8_t>(r.kind));
        u32(r.enter_pc);
        u32(r.fast_begin);
        u32(r.fast_end);
        u32(r.slow_begin);
        u32(r.slow_end);
        u32(r.callee);
        u64(r.trips);
        u64(r.instr_total);
        u64(r.cycles_total);
        u64(r.counter_amount);
        u32(r.counter_global);
        u32(r.calls_folded);
        u32(r.frames_needed);
        u32(r.hist_begin);
        u32(r.hist_end);
      }
      u32(static_cast<uint32_t>(ff.region_hist.size()));
      for (const BlockOpCount& h : ff.region_hist) {
        u8(static_cast<uint8_t>(h.op));
        u32(h.count);
      }
    }
    if (f < lowered.size()) {
      const BcFunc& bf = lowered[f];
      u32(static_cast<uint32_t>(bf.code.size()));
      for (const BcInstr& bi : bf.code) {
        u32(static_cast<uint32_t>(bi.op));
        u8(bi.arity);
        u32(bi.a);
        u32(bi.c);
        u32(bi.target_pc);
        u32(bi.unwind);
        u32(bi.flat_pc);
        u32(bi.flat_end);
        u64(bi.b);
      }
      tables(bf.br_tables);
    }
    ctx.update(buf);
  }
  return ctx.finish();
}

}  // namespace acctee::interp
