// Typed values crossing the embedder <-> Wasm boundary.
#pragma once

#include <bit>
#include <cstdint>
#include <string>
#include <vector>

#include "wasm/types.hpp"

namespace acctee::interp {

/// A Wasm value with its type. Internally the interpreter works on raw
/// 64-bit slots; TypedValue is the public-API view.
struct TypedValue {
  wasm::ValType type = wasm::ValType::I32;
  uint64_t bits = 0;

  static TypedValue make_i32(int32_t v) {
    return {wasm::ValType::I32, static_cast<uint32_t>(v)};
  }
  static TypedValue make_i64(int64_t v) {
    return {wasm::ValType::I64, static_cast<uint64_t>(v)};
  }
  static TypedValue make_f32(float v) {
    return {wasm::ValType::F32, std::bit_cast<uint32_t>(v)};
  }
  static TypedValue make_f64(double v) {
    return {wasm::ValType::F64, std::bit_cast<uint64_t>(v)};
  }

  int32_t i32() const { return static_cast<int32_t>(bits); }
  uint32_t u32() const { return static_cast<uint32_t>(bits); }
  int64_t i64() const { return static_cast<int64_t>(bits); }
  uint64_t u64() const { return bits; }
  float f32() const { return std::bit_cast<float>(static_cast<uint32_t>(bits)); }
  double f64() const { return std::bit_cast<double>(bits); }

  std::string to_string() const {
    switch (type) {
      case wasm::ValType::I32: return std::to_string(i32());
      case wasm::ValType::I64: return std::to_string(i64());
      case wasm::ValType::F32: return std::to_string(f32());
      case wasm::ValType::F64: return std::to_string(f64());
    }
    return "?";
  }
};

using Values = std::vector<TypedValue>;

}  // namespace acctee::interp
