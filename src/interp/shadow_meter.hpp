// The shadow resource meter: an untrusted-side ground-truth cost profile
// collected per request *alongside* — never inside — the billed counters.
//
// AccTEE's billed quantities (the weighted instruction counter, the
// memory·time integral, I/O bytes) deliberately cover only what the
// counter-equivalence verifier can prove. A hostile workload can therefore
// burn provider resources that never reach a billed counter: host-function
// time sinks, memory.grow churn, cache-thrash kernels, instrumentation-
// asymmetric opcodes. The meter makes that billed-vs-true gap *observable*:
// it replays memory accesses through its own cachesim hierarchy, prices
// host transitions and self-reported host work, and tracks grow churn —
// all into private fields that the accounting path never reads.
//
// Billing neutrality is a hard invariant: a meter hook may read the
// interpreter's state but writes only the meter. ExecStats, checkpoints and
// serialized ledger bytes are bit-identical with the meter compiled out
// (CMake -DACCTEE_SHADOW_METER=OFF), compiled in but detached, and attached
// (tested in tests/gap_test.cpp across all dispatch backends).
#pragma once

#include <cstdint>
#include <string_view>

#include "cachesim/cache.hpp"
#include "interp/cost.hpp"
#include "obs/gap_metrics.hpp"
#include "wasm/types.hpp"

namespace acctee::interp {

class ShadowMeter {
 public:
  struct Config {
    /// Geometry of the independent replay hierarchy. Defaults to the same
    /// machine model the billed cache simulation uses, so the replayed miss
    /// cost is comparable with the interpreter's own cycle charges.
    cachesim::Hierarchy::Config cache;
    /// True host-side work per transferred I/O byte (the memcpy the flat
    /// per-call transition price never covers) — the I/O-amplifier gap.
    uint64_t host_work_cycles_per_io_byte = 1;
    /// True cost of growing linear memory by one Wasm page (the kernel
    /// zeroes 64 KiB the billed counter prices at one instruction) — the
    /// grow-churn gap.
    uint64_t grow_cycles_per_page = 4096;
  };

  ShadowMeter() : ShadowMeter(Config{}) {}
  explicit ShadowMeter(const Config& config)
      : config_(config), cache_(config.cache) {}

  /// Clears every measurement (including the replay hierarchy and the
  /// grow baseline) for reuse across requests.
  void reset() {
    cache_.reset();
    host_calls_ = 0;
    host_transition_cycles_ = 0;
    host_work_cycles_ = 0;
    io_bytes_in_ = 0;
    io_bytes_out_ = 0;
    mem_accesses_ = 0;
    shadow_cache_cycles_ = 0;
    shadow_llc_misses_ = 0;
    grow_bytes_ = 0;
    last_memory_bytes_ = 0;
    baseline_seen_ = false;
  }

  // -- hooks (called by the untrusted runtime; write only meter state) --

  void on_host_call(uint64_t transition_cycles) {
    ++host_calls_;
    host_transition_cycles_ += transition_cycles;
  }

  /// Host functions self-report work beyond the flat transition price,
  /// in cycles (see core/runtime_env.cpp).
  void on_host_work(uint64_t cycles) { host_work_cycles_ += cycles; }

  void on_io(uint64_t bytes_in, uint64_t bytes_out) {
    io_bytes_in_ += bytes_in;
    io_bytes_out_ += bytes_out;
  }

  /// Replays one linear-memory access through the shadow hierarchy.
  void on_memory_access(uint64_t addr, uint32_t size, bool is_write) {
    ++mem_accesses_;
    cachesim::AccessResult res = cache_.access(addr, size, is_write);
    shadow_cache_cycles_ += res.cycles;
    if (res.llc_miss) ++shadow_llc_misses_;
  }

  /// Observes the current linear-memory size; deltas above the last
  /// observation accumulate as grow churn. The first observation after
  /// attach/reset sets the baseline (the initial pages are part of the
  /// instance, not churn).
  void on_memory_size(uint64_t bytes) {
    if (!baseline_seen_) {
      baseline_seen_ = true;
      last_memory_bytes_ = bytes;
      return;
    }
    if (bytes > last_memory_bytes_) grow_bytes_ += bytes - last_memory_bytes_;
    last_memory_bytes_ = bytes;
  }

  // -- measurements --
  const Config& config() const { return config_; }
  uint64_t host_calls() const { return host_calls_; }
  uint64_t host_transition_cycles() const { return host_transition_cycles_; }
  uint64_t host_work_cycles() const { return host_work_cycles_; }
  uint64_t io_bytes_in() const { return io_bytes_in_; }
  uint64_t io_bytes_out() const { return io_bytes_out_; }
  uint64_t mem_accesses() const { return mem_accesses_; }
  uint64_t shadow_cache_cycles() const { return shadow_cache_cycles_; }
  uint64_t shadow_llc_misses() const { return shadow_llc_misses_; }
  uint64_t grow_bytes() const { return grow_bytes_; }

  /// Priced host-side work: self-reported cycles plus per-byte I/O work.
  uint64_t true_host_cycles() const {
    return host_transition_cycles_ + host_work_cycles_ +
           (io_bytes_in_ + io_bytes_out_) * config_.host_work_cycles_per_io_byte;
  }

  /// Priced grow churn, in cycles (whole pages by construction).
  uint64_t grow_cycles() const {
    return grow_bytes_ / wasm::kPageSize * config_.grow_cycles_per_page;
  }

 private:
  Config config_;
  cachesim::Hierarchy cache_;  // private replay hierarchy, never the billed one
  uint64_t host_calls_ = 0;
  uint64_t host_transition_cycles_ = 0;
  uint64_t host_work_cycles_ = 0;
  uint64_t io_bytes_in_ = 0;
  uint64_t io_bytes_out_ = 0;
  uint64_t mem_accesses_ = 0;
  uint64_t shadow_cache_cycles_ = 0;
  uint64_t shadow_llc_misses_ = 0;
  uint64_t grow_bytes_ = 0;
  uint64_t last_memory_bytes_ = 0;
  bool baseline_seen_ = false;
};

/// One billed-vs-true comparison. Units are dimension-specific but always
/// identical on both sides of a dimension.
struct GapDimension {
  uint64_t billed = 0;
  uint64_t true_cost = 0;

  /// true/billed with the billed side clamped to 1, so an entirely
  /// uncounted dimension (billed == 0) still yields a finite, monotone
  /// severity signal instead of a division by zero.
  double gap_ratio() const {
    return static_cast<double>(true_cost) /
           static_cast<double>(billed == 0 ? 1 : billed);
  }
};

/// The per-request gap profile the meter supports (DESIGN.md §18).
struct GapProfile {
  /// Headline dimension, cycles. Billed: the weighted instruction counter.
  /// True: the simulated-cycle ground truth (ExecStats::cycles — base
  /// costs, cache misses, MEE/EPC, host transitions) plus the meter's
  /// host-work and grow-churn cycles that even ExecStats never sees.
  GapDimension cycles;
  /// Host dimension, cycles. Billed: host-entry ops × the weight the
  /// counter charges per host call. True: transitions + self-reported work
  /// + per-byte I/O work.
  GapDimension host_cycles;
  /// Cache dimension, cycles. Billed is zero by construction — miss cost
  /// never reaches the counter; the dimension exists to make that visible.
  GapDimension cache_cycles;
  /// Grow-churn dimension, bytes. Billed is zero by construction.
  GapDimension mem_grow_bytes;
  /// I/O dimension, bytes — a *closed* dimension (the runtime accounts
  /// transferred bytes into the signed log), expected at ratio 1.
  GapDimension io_bytes;
};

/// Folds meter measurements and the execution ground truth into a profile.
/// `billed_counter` is the final weighted-counter value; `billed_host_weight`
/// is what the counter charges per host-entry op (table weight of `call`
/// plus the agreed host-call surcharge).
GapProfile compute_gap_profile(const ShadowMeter& meter, const ExecStats& stats,
                               uint64_t billed_counter,
                               uint64_t billed_host_weight);

/// Dimension names record_gap_profile exports, in profile field order.
inline constexpr const char* kGapDimensions[] = {
    "cycles", "host_cycles", "cache_cycles", "mem_grow_bytes", "io_bytes"};

/// Feeds one profile into the per-tenant acctee_gap_* family, one
/// record() per dimension under the names in kGapDimensions.
void record_gap_profile(obs::GapMetrics& metrics, std::string_view tenant,
                        const GapProfile& profile);

}  // namespace acctee::interp
