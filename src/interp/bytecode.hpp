// The internal bytecode — stage three of the compilation pipeline
// (parse → validate → flatten → lower, DESIGN.md §15).
//
// Lowering (interp/lower.hpp) translates each FlatFunc into a BcFunc: a
// compact instruction stream with branch targets pre-resolved to bytecode
// pcs, every immediate inlined, an explicit EnterBlock instruction at each
// basic-block head carrying the block's batched accounting charge, and
// superinstructions (bytecode.def) fusing common multi-op sequences into a
// single dispatch. The flattened form stays authoritative: it is what the
// static verifier proves things about, what serial-mode accounting and the
// trap un-charge path replay, and what the lowering digest binds the
// bytecode back to.
#pragma once

#include <cstdint>
#include <vector>

#include "interp/flatten.hpp"
#include "wasm/opcode.hpp"

namespace acctee::interp {

/// Bytecode opcode space: the wasm base opcodes first (same enumerator
/// names and order as wasm::Op, so unfused ops lower by a straight cast and
/// the run-loop handler bodies are shared verbatim between the flattened
/// and bytecode backends), then the superinstructions from bytecode.def.
enum class BcOp : uint16_t {
#define ACCTEE_OP(name, text, binary, imm, sig, cost) name,
#include "wasm/opcodes.def"
#undef ACCTEE_OP
#define ACCTEE_BC_ANY(name) name,
#include "interp/bytecode.def"
#undef ACCTEE_BC_ANY
};

/// Total number of bytecode opcodes (dispatch table size).
inline constexpr size_t kNumBcOps = []() {
  size_t n = 0;
#define ACCTEE_OP(name, text, binary, imm, sig, cost) ++n;
#include "wasm/opcodes.def"
#undef ACCTEE_OP
#define ACCTEE_BC_ANY(name) ++n;
#include "interp/bytecode.def"
#undef ACCTEE_BC_ANY
  return n;
}();

/// First superinstruction opcode; everything below is a base wasm op.
inline constexpr BcOp kFirstSuperOp = BcOp::EnterBlock;

/// Enumerator name (for diagnostics and test failure messages).
const char* to_string(BcOp op);

/// One bytecode instruction. Fixed 40-byte layout; the `a`, `b`,
/// `target_pc`, `unwind` and `arity` fields deliberately mirror FlatOp so
/// the shared run-loop handlers compile against either representation.
///
/// Field use by op kind (beyond the FlatOp conventions):
///  * EnterBlock:   `a` = block instructions, `b` = block cycles,
///                  `c`/`unwind` = [hist_begin, hist_end) into the flat
///                  function's block_hist, `target_pc` = flat end of block
///                  (for the trap un-charge bookkeeping; not a branch)
///  * cmp+br_if:    `target_pc`/`unwind`/`arity` from the br_if
///  * [get][get][cmp][br_if]: `a`/`c` = the two local indices, + branch
///  * [get][binop]: `a` = local index (right-hand operand)
///  * [const][binop]: `b` = const bits (right-hand operand)
///  * [get][get][op][set]: `a`/`c` = source locals, `unwind` = dest local
///  * [get][const][op][set]: `a` = source local, `b` = const bits,
///                  `unwind` = dest local
///  * GlobalAddConstI64: `a` = global index, `b` = addend
///
/// `flat_pc`/`flat_end` delimit the flattened constituents [flat_pc,
/// flat_end) of the instruction: serial-mode accounting replays them
/// through serial_account, and the trap un-charge path uses `flat_end` to
/// resume the flat pc walk. EnterBlock carries an empty range.
struct BcInstr {
  BcOp op = BcOp::Nop;
  uint8_t arity = 0;
  uint8_t pad = 0;
  uint32_t a = 0;
  uint32_t c = 0;
  uint32_t target_pc = 0;
  uint32_t unwind = 0;
  uint32_t flat_pc = 0;
  uint32_t flat_end = 0;
  uint64_t b = 0;

  friend bool operator==(const BcInstr&, const BcInstr&) = default;
};

static_assert(sizeof(BcInstr) == 40, "BcInstr layout drifted");

/// One lowered function body.
struct BcFunc {
  std::vector<BcInstr> code;  // starts with the entry block's EnterBlock
  // br_table targets with pcs remapped to bytecode pcs.
  std::vector<std::vector<BrTarget>> br_tables;

  friend bool operator==(const BcFunc&, const BcFunc&) = default;
};

/// True for opcodes whose `target_pc`/`unwind`/`arity` encode a pre-resolved
/// branch (base If/Br/BrIf plus every fused compare+branch superop).
bool bc_has_branch_target(BcOp op);

/// True for superinstruction opcodes (EnterBlock and every fusion).
inline bool bc_is_super(BcOp op) {
  return static_cast<uint16_t>(op) >= static_cast<uint16_t>(kFirstSuperOp);
}

}  // namespace acctee::interp
