#include "interp/shadow_meter.hpp"

namespace acctee::interp {

GapProfile compute_gap_profile(const ShadowMeter& meter, const ExecStats& stats,
                               uint64_t billed_counter,
                               uint64_t billed_host_weight) {
  GapProfile profile;

  profile.host_cycles.billed = stats.host_calls * billed_host_weight;
  profile.host_cycles.true_cost = meter.true_host_cycles();

  profile.cache_cycles.billed = 0;
  profile.cache_cycles.true_cost = meter.shadow_cache_cycles();

  profile.mem_grow_bytes.billed = 0;
  profile.mem_grow_bytes.true_cost = meter.grow_bytes();

  profile.io_bytes.billed = stats.io_bytes_in + stats.io_bytes_out;
  profile.io_bytes.true_cost = meter.io_bytes_in() + meter.io_bytes_out();

  // Headline: what the provider bills vs. what the machine model says the
  // request really cost. ExecStats::cycles already folds base costs, billed
  // cache-miss/MEE/EPC charges and the flat host transition price; the
  // meter contributes the host work and grow churn nothing else sees.
  profile.cycles.billed = billed_counter;
  profile.cycles.true_cost = stats.cycles + meter.host_work_cycles() +
                             (meter.io_bytes_in() + meter.io_bytes_out()) *
                                 meter.config().host_work_cycles_per_io_byte +
                             meter.grow_cycles();
  return profile;
}

void record_gap_profile(obs::GapMetrics& metrics, std::string_view tenant,
                        const GapProfile& profile) {
  const GapDimension* dims[] = {&profile.cycles, &profile.host_cycles,
                                &profile.cache_cycles, &profile.mem_grow_bytes,
                                &profile.io_bytes};
  for (size_t i = 0; i < std::size(dims); ++i) {
    metrics.record(tenant, kGapDimensions[i], dims[i]->billed,
                   dims[i]->true_cost);
  }
}

}  // namespace acctee::interp
