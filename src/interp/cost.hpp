// Simulated-hardware cost model and execution statistics.
//
// The interpreter charges *simulated cycles* for every executed instruction:
// a per-opcode base cost (wasm/opcodes.def), plus the cache-hierarchy cost
// for loads/stores, plus platform overheads configured here. "Runtime" in
// every AccTEE benchmark means simulated cycles, which is what lets the
// paper's relative results (native vs WASM vs SGX-sim vs SGX-hw) be
// reproduced deterministically without the authors' hardware:
//
//   * Native:       no sandbox overheads.
//   * WASM:         per-access bounds-check cycles + call overhead (SFI).
//   * WASM-SGX SIM: same as WASM (paper §5.1: simulation adds no overhead).
//   * WASM-SGX HW:  + MEE cycles per LLC miss; + EPC paging penalty once the
//                   enclave footprint exceeds the usable EPC (93 MB), which
//                   produces the Fig. 6 blow-ups for large kernels.
#pragma once

#include <array>
#include <cstdint>

#include "cachesim/cache.hpp"
#include "wasm/opcode.hpp"

namespace acctee::interp {

/// Platform configurations compared throughout the paper's evaluation.
enum class Platform {
  Native,      // baseline: kernel as if compiled natively
  Wasm,        // WebAssembly sandbox (Node.js in the paper)
  WasmSgxSim,  // + SGX-LKL in simulation mode
  WasmSgxHw,   // + SGX hardware mode (MEE + EPC paging)
};

const char* to_string(Platform p);

/// Tunable cost parameters; defaults model the paper's Xeon E3-1230 v5.
struct CostConfig {
  // SFI overheads (Wasm platforms only).
  uint32_t bounds_check_cycles = 1;
  uint32_t call_overhead_cycles = 4;

  // SGX hardware-mode overheads.
  uint32_t mee_cycles_per_llc_miss = 0;   // memory-encryption engine
  uint64_t epc_limit_bytes = 0;           // 0 = no EPC limit
  uint32_t epc_fault_cycles = 0;          // cost of one EPC page-in/out pair
  uint64_t enclave_base_footprint = 0;    // runtime+code resident in EPC

  // Host-call (OCALL-like) transition cost.
  uint32_t host_call_cycles = 150;

  /// Preset for one of the four platforms. `hierarchy_config` is shared so
  /// the cache geometry stays identical across platforms.
  static CostConfig for_platform(Platform p);
};

/// Execution statistics: both the ground truth for accounting tests and the
/// "runtime" measurements for every benchmark figure.
struct ExecStats {
  uint64_t instructions = 0;       // dynamically executed Wasm instructions
  uint64_t cycles = 0;             // simulated cycles (the time metric)
  uint64_t mem_loads = 0;
  uint64_t mem_stores = 0;
  uint64_t llc_misses = 0;
  uint64_t epc_faults = 0;
  uint64_t host_calls = 0;
  uint64_t peak_memory_bytes = 0;  // peak linear-memory size
  // Time integral of linear-memory size, approximated by the instruction
  // counter as in paper §3.5 (units: byte * instructions).
  uint64_t memory_integral = 0;
  uint64_t io_bytes_in = 0;        // accumulated by I/O host functions
  uint64_t io_bytes_out = 0;
  std::array<uint64_t, wasm::kNumOps> per_op{};  // per-opcode dynamic counts

  /// Dynamic instruction count weighted by a table (e.g. base costs).
  uint64_t weighted(const std::array<uint64_t, wasm::kNumOps>& weights) const {
    uint64_t sum = 0;
    for (size_t i = 0; i < wasm::kNumOps; ++i) sum += per_op[i] * weights[i];
    return sum;
  }

  /// Accounting conservation invariant: the per-opcode histogram and the
  /// total instruction counter are updated together (per instruction or per
  /// basic block), so their sums must always agree — including after traps
  /// and at checkpoint boundaries. Tested across dispatch/accounting modes
  /// in tests/block_accounting_test.cpp.
  bool per_op_conserved() const {
    uint64_t sum = 0;
    for (uint64_t c : per_op) sum += c;
    return sum == instructions;
  }

  /// Field-wise equality (the neutrality gate compares whole stat blocks).
  bool operator==(const ExecStats&) const = default;
};

}  // namespace acctee::interp
