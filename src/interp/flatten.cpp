#include "interp/flatten.hpp"

#include "common/error.hpp"

namespace acctee::interp {

namespace {

using wasm::Function;
using wasm::ImmKind;
using wasm::Instr;
using wasm::Module;
using wasm::Op;
using wasm::op_info;

class Flattener {
 public:
  Flattener(const Module& module, const Function& func)
      : module_(module), func_(func) {
    const wasm::FuncType& type = module.types.at(func.type_index);
    out_.type_index = func.type_index;
    out_.num_params = static_cast<uint32_t>(type.params.size());
    out_.local_types = type.params;
    out_.local_types.insert(out_.local_types.end(), func.locals.begin(),
                            func.locals.end());
  }

  FlatFunc run() {
    const wasm::FuncType& type = module_.types.at(func_.type_index);
    uint8_t result_arity = static_cast<uint8_t>(type.results.size());
    labels_.push_back(Label{false, result_arity, 0, pc()});
    flatten_body(func_.body);
    // Implicit return; function-level branches also land here.
    patch(labels_.back(), pc());
    labels_.pop_back();
    emit_synthetic_return(result_arity);
    return std::move(out_);
  }

 private:
  struct Label {
    bool is_loop = false;
    uint8_t arity = 0;    // branch arity (0 for loops)
    uint32_t height = 0;  // operand height at entry
    uint32_t loop_pc = 0; // branch destination for loops
    std::vector<size_t> op_sites;  // FlatOps whose target_pc needs the end pc
    std::vector<std::pair<uint32_t, uint32_t>> table_sites;  // (table, slot)
  };

  const Module& module_;
  const Function& func_;
  FlatFunc out_;
  std::vector<Label> labels_;
  uint32_t height_ = 0;
  bool dead_ = false;

  uint32_t pc() const { return static_cast<uint32_t>(out_.code.size()); }

  void patch(const Label& label, uint32_t end_pc) {
    for (size_t site : label.op_sites) out_.code[site].target_pc = end_pc;
    for (auto [table, slot] : label.table_sites) {
      out_.br_tables[table][slot].pc = end_pc;
    }
  }

  void emit_synthetic_return(uint8_t arity) {
    FlatOp op;
    op.op = Op::Return;
    op.synthetic = true;
    op.arity = arity;
    out_.code.push_back(op);
  }

  Label& label_at(uint32_t depth) {
    if (depth >= labels_.size()) {
      throw ValidationError("flatten: branch depth out of range");
    }
    return labels_[labels_.size() - 1 - depth];
  }

  void apply_sig(std::string_view sig) {
    size_t colon = sig.find(':');
    height_ -= static_cast<uint32_t>(colon);
    height_ += static_cast<uint32_t>(sig.size() - colon - 1);
  }

  void flatten_body(const std::vector<Instr>& body) {
    for (const auto& instr : body) {
      if (dead_) return;  // statically unreachable: never executes
      flatten_instr(instr);
    }
  }

  void flatten_instr(const Instr& instr) {
    const wasm::OpInfo& info = op_info(instr.op);
    switch (instr.op) {
      case Op::Block:
      case Op::Loop: {
        uint8_t arity = instr.block_type.result ? 1 : 0;
        // The instruction itself executes (and is counted by the
        // instrumenter) but needs no runtime work beyond the cycle charge.
        out_.code.push_back(FlatOp{.op = instr.op});
        labels_.push_back(
            Label{instr.op == Op::Loop, arity, height_, pc()});
        flatten_body(instr.body);
        Label label = std::move(labels_.back());
        labels_.pop_back();
        patch(label, pc());
        dead_ = false;
        height_ = label.height + arity;
        return;
      }
      case Op::If: {
        uint8_t arity = instr.block_type.result ? 1 : 0;
        height_ -= 1;  // condition
        size_t if_site = out_.code.size();
        out_.code.push_back(FlatOp{.op = Op::If});
        labels_.push_back(Label{false, arity, height_, 0});
        flatten_body(instr.body);
        if (!instr.else_body.empty()) {
          if (!dead_) {
            // Jump over the else branch from the end of the then branch.
            size_t jump_site = out_.code.size();
            FlatOp jump;
            jump.op = Op::Br;
            jump.synthetic = true;
            jump.arity = arity;
            jump.unwind = labels_.back().height;
            out_.code.push_back(jump);
            labels_.back().op_sites.push_back(jump_site);
          }
          out_.code[if_site].target_pc = pc();  // else branch starts here
          dead_ = false;
          height_ = labels_.back().height;
          flatten_body(instr.else_body);
        } else {
          labels_.back().op_sites.push_back(if_site);
        }
        Label label = std::move(labels_.back());
        labels_.pop_back();
        patch(label, pc());
        dead_ = false;
        height_ = label.height + arity;
        return;
      }
      case Op::Br:
      case Op::BrIf: {
        if (instr.op == Op::BrIf) height_ -= 1;  // condition
        size_t site = out_.code.size();
        FlatOp op;
        op.op = instr.op;
        out_.code.push_back(op);
        Label& label = label_at(instr.index);
        out_.code[site].unwind = label.height;
        out_.code[site].arity = label.is_loop ? 0 : label.arity;
        if (label.is_loop) {
          out_.code[site].target_pc = label.loop_pc;
        } else {
          label.op_sites.push_back(site);
        }
        if (instr.op == Op::Br) dead_ = true;
        return;
      }
      case Op::BrTable: {
        height_ -= 1;  // selector
        uint32_t table_id = static_cast<uint32_t>(out_.br_tables.size());
        FlatOp op;
        op.op = Op::BrTable;
        op.a = table_id;
        out_.code.push_back(op);
        out_.br_tables.emplace_back();
        auto& targets = out_.br_tables.back();
        for (size_t i = 0; i <= instr.br_targets.size(); ++i) {
          uint32_t depth = i < instr.br_targets.size() ? instr.br_targets[i]
                                                       : instr.index;
          Label& label = label_at(depth);
          BrTarget t;
          t.unwind = label.height;
          t.arity = label.is_loop ? 0 : label.arity;
          if (label.is_loop) {
            t.pc = label.loop_pc;
          } else {
            label.table_sites.emplace_back(table_id,
                                           static_cast<uint32_t>(i));
          }
          targets.push_back(t);
        }
        dead_ = true;
        return;
      }
      case Op::Return: {
        FlatOp op;
        op.op = Op::Return;
        op.arity = static_cast<uint8_t>(
            module_.types[func_.type_index].results.size());
        out_.code.push_back(op);
        dead_ = true;
        return;
      }
      case Op::Unreachable: {
        out_.code.push_back(FlatOp{.op = Op::Unreachable});
        dead_ = true;
        return;
      }
      case Op::Call: {
        const wasm::FuncType& ft = module_.func_type(instr.index);
        FlatOp op;
        op.op = Op::Call;
        op.a = instr.index;
        out_.code.push_back(op);
        height_ -= static_cast<uint32_t>(ft.params.size());
        height_ += static_cast<uint32_t>(ft.results.size());
        return;
      }
      case Op::CallIndirect: {
        const wasm::FuncType& ft = module_.types.at(instr.index);
        FlatOp op;
        op.op = Op::CallIndirect;
        op.a = instr.index;
        out_.code.push_back(op);
        height_ -= 1 + static_cast<uint32_t>(ft.params.size());
        height_ += static_cast<uint32_t>(ft.results.size());
        return;
      }
      case Op::Drop:
        out_.code.push_back(FlatOp{.op = Op::Drop});
        height_ -= 1;
        return;
      case Op::Select:
        out_.code.push_back(FlatOp{.op = Op::Select});
        height_ -= 2;
        return;
      case Op::LocalGet:
      case Op::LocalSet:
      case Op::LocalTee:
      case Op::GlobalGet:
      case Op::GlobalSet: {
        FlatOp op;
        op.op = instr.op;
        op.a = instr.index;
        out_.code.push_back(op);
        if (instr.op == Op::LocalGet || instr.op == Op::GlobalGet) {
          height_ += 1;
        } else if (instr.op == Op::LocalSet || instr.op == Op::GlobalSet) {
          height_ -= 1;
        }
        return;
      }
      default: {
        // Uniform ops (numeric, memory, consts, memory.size/grow, nop).
        FlatOp op;
        op.op = instr.op;
        op.a = instr.mem_align;
        op.b = info.imm == ImmKind::Mem ? instr.mem_offset : instr.imm;
        out_.code.push_back(op);
        apply_sig(info.sig);
        return;
      }
    }
  }
};

/// True for ops after which execution cannot simply fall through to the
/// next FlatOp (control transfers) or must not be batched past because they
/// observe the live instruction counter (`memory.grow` folds the
/// memory-size integral). The flattener's synthetic ops (internal
/// jump/halt) are Br/Return and end blocks through the switch; synthetic
/// copies inside optimisation-region fast bodies fall through like their
/// originals. A region-enter marker ends its block — it either charges and
/// falls into the fast body or transfers control to the slow copy.
bool ends_block(const FlatOp& op) {
  if (is_region_enter(op)) return true;
  switch (op.op) {
    case Op::If:
    case Op::Br:
    case Op::BrIf:
    case Op::BrTable:
    case Op::Return:
    case Op::Call:
    case Op::CallIndirect:
    case Op::Unreachable:
    case Op::MemoryGrow:
      return true;
    default:
      return false;
  }
}

}  // namespace

/// Partitions `ff.code` into basic blocks and precomputes each block's
/// accounting summary. Must run after all branch targets are patched.
void compute_block_costs(FlatFunc& ff) {
  const size_t n = ff.code.size();
  ff.blocks.clear();
  ff.block_index.assign(n, 0);
  ff.block_hist.clear();
  if (n == 0) return;

  // Mark block heads: function entry, every branch target, and the op
  // after every block-ending op.
  std::vector<bool> head(n, false);
  head[0] = true;
  for (size_t i = 0; i < n; ++i) {
    const FlatOp& op = ff.code[i];
    if (op.op == Op::If || op.op == Op::Br || op.op == Op::BrIf ||
        is_region_enter(op)) {
      if (op.target_pc < n) head[op.target_pc] = true;
    }
    if (ends_block(op) && i + 1 < n) head[i + 1] = true;
  }
  for (const auto& table : ff.br_tables) {
    for (const BrTarget& t : table) {
      if (t.pc < n) head[t.pc] = true;
    }
  }

  size_t start = 0;
  while (start < n) {
    size_t end = start + 1;
    while (end < n && !head[end]) ++end;
    BlockCost blk;
    blk.end_pc = static_cast<uint32_t>(end);
    blk.hist_begin = static_cast<uint32_t>(ff.block_hist.size());
    for (size_t i = start; i < end; ++i) {
      const FlatOp& op = ff.code[i];
      ff.block_index[i] = static_cast<uint32_t>(ff.blocks.size());
      if (op.synthetic) continue;
      ++blk.instructions;
      blk.cycles += op_info(op.op).base_cost;
      bool found = false;
      for (size_t h = blk.hist_begin; h < ff.block_hist.size(); ++h) {
        if (ff.block_hist[h].op == op.op) {
          ++ff.block_hist[h].count;
          found = true;
          break;
        }
      }
      if (!found) ff.block_hist.push_back(BlockOpCount{op.op, 1});
    }
    blk.hist_end = static_cast<uint32_t>(ff.block_hist.size());
    ff.blocks.push_back(blk);
    start = end;
  }
}

FlatFunc flatten(const wasm::Module& module, const wasm::Function& func) {
  Flattener flattener(module, func);
  FlatFunc ff = flattener.run();
  compute_block_costs(ff);
  return ff;
}

}  // namespace acctee::interp
