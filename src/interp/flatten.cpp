#include "interp/flatten.hpp"

#include "common/error.hpp"

namespace acctee::interp {

namespace {

using wasm::Function;
using wasm::ImmKind;
using wasm::Instr;
using wasm::Module;
using wasm::Op;
using wasm::op_info;

class Flattener {
 public:
  Flattener(const Module& module, const Function& func)
      : module_(module), func_(func) {
    const wasm::FuncType& type = module.types.at(func.type_index);
    out_.type_index = func.type_index;
    out_.num_params = static_cast<uint32_t>(type.params.size());
    out_.local_types = type.params;
    out_.local_types.insert(out_.local_types.end(), func.locals.begin(),
                            func.locals.end());
  }

  FlatFunc run() {
    const wasm::FuncType& type = module_.types.at(func_.type_index);
    uint8_t result_arity = static_cast<uint8_t>(type.results.size());
    labels_.push_back(Label{false, result_arity, 0, pc()});
    flatten_body(func_.body);
    // Implicit return; function-level branches also land here.
    patch(labels_.back(), pc());
    labels_.pop_back();
    emit_synthetic_return(result_arity);
    return std::move(out_);
  }

 private:
  struct Label {
    bool is_loop = false;
    uint8_t arity = 0;    // branch arity (0 for loops)
    uint32_t height = 0;  // operand height at entry
    uint32_t loop_pc = 0; // branch destination for loops
    std::vector<size_t> op_sites;  // FlatOps whose target_pc needs the end pc
    std::vector<std::pair<uint32_t, uint32_t>> table_sites;  // (table, slot)
  };

  const Module& module_;
  const Function& func_;
  FlatFunc out_;
  std::vector<Label> labels_;
  uint32_t height_ = 0;
  bool dead_ = false;

  uint32_t pc() const { return static_cast<uint32_t>(out_.code.size()); }

  void patch(const Label& label, uint32_t end_pc) {
    for (size_t site : label.op_sites) out_.code[site].target_pc = end_pc;
    for (auto [table, slot] : label.table_sites) {
      out_.br_tables[table][slot].pc = end_pc;
    }
  }

  void emit_synthetic_return(uint8_t arity) {
    FlatOp op;
    op.op = Op::Return;
    op.synthetic = true;
    op.arity = arity;
    out_.code.push_back(op);
  }

  Label& label_at(uint32_t depth) {
    if (depth >= labels_.size()) {
      throw ValidationError("flatten: branch depth out of range");
    }
    return labels_[labels_.size() - 1 - depth];
  }

  void apply_sig(std::string_view sig) {
    size_t colon = sig.find(':');
    height_ -= static_cast<uint32_t>(colon);
    height_ += static_cast<uint32_t>(sig.size() - colon - 1);
  }

  void flatten_body(const std::vector<Instr>& body) {
    for (const auto& instr : body) {
      if (dead_) return;  // statically unreachable: never executes
      flatten_instr(instr);
    }
  }

  void flatten_instr(const Instr& instr) {
    const wasm::OpInfo& info = op_info(instr.op);
    switch (instr.op) {
      case Op::Block:
      case Op::Loop: {
        uint8_t arity = instr.block_type.result ? 1 : 0;
        // The instruction itself executes (and is counted by the
        // instrumenter) but needs no runtime work beyond the cycle charge.
        out_.code.push_back(FlatOp{.op = instr.op});
        labels_.push_back(
            Label{instr.op == Op::Loop, arity, height_, pc()});
        flatten_body(instr.body);
        Label label = std::move(labels_.back());
        labels_.pop_back();
        patch(label, pc());
        dead_ = false;
        height_ = label.height + arity;
        return;
      }
      case Op::If: {
        uint8_t arity = instr.block_type.result ? 1 : 0;
        height_ -= 1;  // condition
        size_t if_site = out_.code.size();
        out_.code.push_back(FlatOp{.op = Op::If});
        labels_.push_back(Label{false, arity, height_, 0});
        flatten_body(instr.body);
        if (!instr.else_body.empty()) {
          if (!dead_) {
            // Jump over the else branch from the end of the then branch.
            size_t jump_site = out_.code.size();
            FlatOp jump;
            jump.op = Op::Br;
            jump.synthetic = true;
            jump.arity = arity;
            jump.unwind = labels_.back().height;
            out_.code.push_back(jump);
            labels_.back().op_sites.push_back(jump_site);
          }
          out_.code[if_site].target_pc = pc();  // else branch starts here
          dead_ = false;
          height_ = labels_.back().height;
          flatten_body(instr.else_body);
        } else {
          labels_.back().op_sites.push_back(if_site);
        }
        Label label = std::move(labels_.back());
        labels_.pop_back();
        patch(label, pc());
        dead_ = false;
        height_ = label.height + arity;
        return;
      }
      case Op::Br:
      case Op::BrIf: {
        if (instr.op == Op::BrIf) height_ -= 1;  // condition
        size_t site = out_.code.size();
        FlatOp op;
        op.op = instr.op;
        out_.code.push_back(op);
        Label& label = label_at(instr.index);
        out_.code[site].unwind = label.height;
        out_.code[site].arity = label.is_loop ? 0 : label.arity;
        if (label.is_loop) {
          out_.code[site].target_pc = label.loop_pc;
        } else {
          label.op_sites.push_back(site);
        }
        if (instr.op == Op::Br) dead_ = true;
        return;
      }
      case Op::BrTable: {
        height_ -= 1;  // selector
        uint32_t table_id = static_cast<uint32_t>(out_.br_tables.size());
        FlatOp op;
        op.op = Op::BrTable;
        op.a = table_id;
        out_.code.push_back(op);
        out_.br_tables.emplace_back();
        auto& targets = out_.br_tables.back();
        for (size_t i = 0; i <= instr.br_targets.size(); ++i) {
          uint32_t depth = i < instr.br_targets.size() ? instr.br_targets[i]
                                                       : instr.index;
          Label& label = label_at(depth);
          BrTarget t;
          t.unwind = label.height;
          t.arity = label.is_loop ? 0 : label.arity;
          if (label.is_loop) {
            t.pc = label.loop_pc;
          } else {
            label.table_sites.emplace_back(table_id,
                                           static_cast<uint32_t>(i));
          }
          targets.push_back(t);
        }
        dead_ = true;
        return;
      }
      case Op::Return: {
        FlatOp op;
        op.op = Op::Return;
        op.arity = static_cast<uint8_t>(
            module_.types[func_.type_index].results.size());
        out_.code.push_back(op);
        dead_ = true;
        return;
      }
      case Op::Unreachable: {
        out_.code.push_back(FlatOp{.op = Op::Unreachable});
        dead_ = true;
        return;
      }
      case Op::Call: {
        const wasm::FuncType& ft = module_.func_type(instr.index);
        FlatOp op;
        op.op = Op::Call;
        op.a = instr.index;
        out_.code.push_back(op);
        height_ -= static_cast<uint32_t>(ft.params.size());
        height_ += static_cast<uint32_t>(ft.results.size());
        return;
      }
      case Op::CallIndirect: {
        const wasm::FuncType& ft = module_.types.at(instr.index);
        FlatOp op;
        op.op = Op::CallIndirect;
        op.a = instr.index;
        out_.code.push_back(op);
        height_ -= 1 + static_cast<uint32_t>(ft.params.size());
        height_ += static_cast<uint32_t>(ft.results.size());
        return;
      }
      case Op::Drop:
        out_.code.push_back(FlatOp{.op = Op::Drop});
        height_ -= 1;
        return;
      case Op::Select:
        out_.code.push_back(FlatOp{.op = Op::Select});
        height_ -= 2;
        return;
      case Op::LocalGet:
      case Op::LocalSet:
      case Op::LocalTee:
      case Op::GlobalGet:
      case Op::GlobalSet: {
        FlatOp op;
        op.op = instr.op;
        op.a = instr.index;
        out_.code.push_back(op);
        if (instr.op == Op::LocalGet || instr.op == Op::GlobalGet) {
          height_ += 1;
        } else if (instr.op == Op::LocalSet || instr.op == Op::GlobalSet) {
          height_ -= 1;
        }
        return;
      }
      default: {
        // Uniform ops (numeric, memory, consts, memory.size/grow, nop).
        FlatOp op;
        op.op = instr.op;
        op.a = instr.mem_align;
        op.b = info.imm == ImmKind::Mem ? instr.mem_offset : instr.imm;
        out_.code.push_back(op);
        apply_sig(info.sig);
        return;
      }
    }
  }
};

}  // namespace

FlatFunc flatten(const wasm::Module& module, const wasm::Function& func) {
  Flattener flattener(module, func);
  return flattener.run();
}

}  // namespace acctee::interp
