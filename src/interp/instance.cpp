#include "interp/instance.hpp"

#include <bit>
#include <cmath>
#include <limits>
#include <type_traits>

namespace acctee::interp {

namespace {

using wasm::Op;

float as_f32(uint64_t bits) {
  return std::bit_cast<float>(static_cast<uint32_t>(bits));
}
double as_f64(uint64_t bits) { return std::bit_cast<double>(bits); }
uint64_t from_f32(float v) { return std::bit_cast<uint32_t>(v); }
uint64_t from_f64(double v) { return std::bit_cast<uint64_t>(v); }

template <typename F>
F wasm_min(F a, F b) {
  if (std::isnan(a) || std::isnan(b)) {
    return std::numeric_limits<F>::quiet_NaN();
  }
  if (a == b) return std::signbit(a) ? a : b;  // min(-0, +0) = -0
  return a < b ? a : b;
}

template <typename F>
F wasm_max(F a, F b) {
  if (std::isnan(a) || std::isnan(b)) {
    return std::numeric_limits<F>::quiet_NaN();
  }
  if (a == b) return std::signbit(a) ? b : a;  // max(-0, +0) = +0
  return a > b ? a : b;
}

int32_t trunc_i32_s(double x) {
  if (std::isnan(x)) throw TrapError("invalid conversion to integer");
  double t = std::trunc(x);
  if (t < -2147483648.0 || t > 2147483647.0) {
    throw TrapError("integer overflow in trunc");
  }
  return static_cast<int32_t>(t);
}

uint32_t trunc_i32_u(double x) {
  if (std::isnan(x)) throw TrapError("invalid conversion to integer");
  double t = std::trunc(x);
  if (t < 0.0 || t > 4294967295.0) throw TrapError("integer overflow in trunc");
  return static_cast<uint32_t>(t);
}

int64_t trunc_i64_s(double x) {
  if (std::isnan(x)) throw TrapError("invalid conversion to integer");
  double t = std::trunc(x);
  if (t < -9223372036854775808.0 || t >= 9223372036854775808.0) {
    throw TrapError("integer overflow in trunc");
  }
  return static_cast<int64_t>(t);
}

uint64_t trunc_i64_u(double x) {
  if (std::isnan(x)) throw TrapError("invalid conversion to integer");
  double t = std::trunc(x);
  if (t < 0.0 || t >= 18446744073709551616.0) {
    throw TrapError("integer overflow in trunc");
  }
  return static_cast<uint64_t>(t);
}

}  // namespace

Instance::Instance(wasm::Module module, ImportMap imports, Options options)
    : Instance(compile(std::move(module),
                       CompiledModule::CompileOptions{.validate = false}),
               std::move(imports), options) {}

Instance::Instance(CompiledModulePtr compiled, ImportMap imports,
                   Options options)
    : compiled_(std::move(compiled)),
      imports_(std::move(imports)),
      options_(options),
      cost_(options.cost.value_or(CostConfig::for_platform(options.platform))),
      cache_(options.cache_config) {
  // Link imports.
  for (const auto& imp : mod().imports) {
    const HostEntry* entry = imports_.find(imp.module, imp.name);
    if (entry == nullptr) {
      throw LinkError("unresolved import " + imp.module + "." + imp.name);
    }
    if (!(entry->type == mod().types.at(imp.type_index))) {
      throw LinkError("import type mismatch for " + imp.module + "." +
                      imp.name + ": module wants " +
                      mod().types[imp.type_index].to_string() +
                      ", host provides " + entry->type.to_string());
    }
  }

  // Memory + data segments.
  if (mod().memory) {
    memory_ = std::make_unique<LinearMemory>(mod().memory->min,
                                             mod().memory->max);
    for (const auto& seg : mod().data) {
      memory_->write_bytes(seg.offset, seg.bytes);
    }
    stats_.peak_memory_bytes = memory_->size_bytes();
  } else if (!mod().data.empty()) {
    throw LinkError("data segment without memory");
  }

  // Table + element segments.
  if (mod().table) {
    table_.assign(mod().table->min, -1);
    for (const auto& seg : mod().elems) {
      if (seg.offset + seg.func_indices.size() > table_.size()) {
        throw LinkError("elem segment out of table bounds");
      }
      for (size_t i = 0; i < seg.func_indices.size(); ++i) {
        table_[seg.offset + i] = seg.func_indices[i];
      }
    }
  }

  // Globals.
  globals_.reserve(mod().globals.size());
  for (const auto& g : mod().globals) globals_.push_back(g.init.imm);

  if (mod().start) {
    invoke_index(*mod().start, {});
  }
}

Values Instance::invoke(std::string_view export_name, const Values& args) {
  auto index = mod().find_export(export_name, wasm::ExternKind::Func);
  if (!index) {
    throw LinkError("no exported function named '" + std::string(export_name) +
                    "'");
  }
  return invoke_index(*index, args);
}

Values Instance::invoke_index(uint32_t func_index, const Values& args) {
  const wasm::FuncType& type = mod().func_type(func_index);
  if (args.size() != type.params.size()) {
    throw LinkError("argument count mismatch");
  }
  for (size_t i = 0; i < args.size(); ++i) {
    if (args[i].type != type.params[i]) {
      throw LinkError("argument type mismatch at position " +
                      std::to_string(i));
    }
  }
  if (mod().is_import(func_index)) {
    throw LinkError("cannot invoke an imported function directly");
  }

  size_t stack_mark = stack_.size();
  for (const auto& a : args) push_raw(a.bits);
  enter_frame(func_index - static_cast<uint32_t>(mod().imports.size()));
  run(frames_.size());

  Values results(type.results.size());
  for (size_t i = type.results.size(); i-- > 0;) {
    results[i] = TypedValue{type.results[i], pop_raw()};
  }
  if (stack_.size() != stack_mark) {
    stack_.resize(stack_mark);  // defensive; should not happen
  }
  // Fold the tail of the memory-size integral.
  note_memory_growth();
  return results;
}

TypedValue Instance::read_global(std::string_view export_name) const {
  auto index = mod().find_export(export_name, wasm::ExternKind::Global);
  if (!index) {
    throw LinkError("no exported global named '" + std::string(export_name) +
                    "'");
  }
  return read_global_index(*index);
}

TypedValue Instance::read_global_index(uint32_t global_index) const {
  if (global_index >= globals_.size()) {
    throw LinkError("global index out of range");
  }
  return TypedValue{mod().globals[global_index].type,
                    globals_[global_index]};
}

void Instance::enter_frame(uint32_t defined_index) {
  if (frames_.size() >= options_.max_call_depth) {
    throw TrapError("call stack exhausted");
  }
  const FlatFunc& ff = flat()[defined_index];
  Frame frame;
  frame.func = defined_index;
  frame.pc = 0;
  frame.locals_base = static_cast<uint32_t>(stack_.size() - ff.num_params);
  // Zero-initialise non-parameter locals.
  stack_.resize(stack_.size() + ff.local_types.size() - ff.num_params, 0);
  frame.operand_base = static_cast<uint32_t>(stack_.size());
  frames_.push_back(frame);
}

void Instance::call_host(uint32_t import_index) {
  const wasm::Import& imp = mod().imports[import_index];
  const HostEntry* entry = imports_.find(imp.module, imp.name);
  const wasm::FuncType& type = mod().types[imp.type_index];

  Values args(type.params.size());
  for (size_t i = type.params.size(); i-- > 0;) {
    args[i] = TypedValue{type.params[i], pop_raw()};
  }
  HostContext ctx{memory_.get(), &stats_};
  ++stats_.host_calls;
  stats_.cycles += cost_.host_call_cycles;
  Values results = entry->func(args, ctx);
  if (results.size() != type.results.size()) {
    throw LinkError("host function returned wrong result count for " +
                    imp.module + "." + imp.name);
  }
  for (size_t i = 0; i < results.size(); ++i) {
    if (results[i].type != type.results[i]) {
      throw LinkError("host function result type mismatch for " + imp.module +
                      "." + imp.name);
    }
    push_raw(results[i].bits);
  }
}

void Instance::do_branch(Frame& frame, uint32_t target_pc, uint32_t unwind,
                         uint8_t arity) {
  size_t keep_from = stack_.size() - arity;
  size_t new_top = frame.operand_base + unwind;
  for (uint8_t i = 0; i < arity; ++i) {
    stack_[new_top + i] = stack_[keep_from + i];
  }
  stack_.resize(new_top + arity);
  frame.pc = target_pc;
}

void Instance::charge_memory(uint64_t effective_addr, uint32_t size,
                             bool is_write) {
  stats_.cycles += cost_.bounds_check_cycles;
  if (!options_.cache_model) return;
  cachesim::AccessResult res = cache_.access(effective_addr, size, is_write);
  stats_.cycles += res.cycles;
  if (res.llc_miss) {
    ++stats_.llc_misses;
    stats_.cycles += cost_.mee_cycles_per_llc_miss;
    if (cost_.epc_limit_bytes != 0 && memory_ != nullptr) {
      uint64_t footprint =
          cost_.enclave_base_footprint + memory_->size_bytes();
      if (footprint > cost_.epc_limit_bytes) {
        // Deterministic fractional paging: a fraction p of LLC misses hits a
        // page that is not EPC-resident.
        double p = 1.0 - static_cast<double>(cost_.epc_limit_bytes) /
                             static_cast<double>(footprint);
        epc_fault_accum_ += p;
        if (epc_fault_accum_ >= 1.0) {
          epc_fault_accum_ -= 1.0;
          ++stats_.epc_faults;
          stats_.cycles += cost_.epc_fault_cycles;
        }
      }
    }
  }
}

void Instance::note_memory_growth() {
  if (memory_ == nullptr) return;
  uint64_t size = memory_->size_bytes();
  stats_.memory_integral += (stats_.instructions - integral_mark_) * size;
  integral_mark_ = stats_.instructions;
  if (size > stats_.peak_memory_bytes) stats_.peak_memory_bytes = size;
}

void Instance::set_checkpoint(uint64_t interval, CheckpointHandler handler) {
  checkpoint_interval_ = interval;
  checkpoint_ = std::move(handler);
  next_checkpoint_ =
      interval == 0 ? UINT64_MAX : stats_.instructions + interval;
}

void Instance::account_instruction(const FlatOp& op) {
  ++stats_.instructions;
  ++stats_.per_op[static_cast<size_t>(op.op)];
  stats_.cycles += wasm::op_info(op.op).base_cost;
  if (stats_.instructions >= next_checkpoint_) {
    next_checkpoint_ += checkpoint_interval_;
    note_memory_growth();  // fold the integral up to this point
    checkpoint_(*this);
  }
}

void Instance::run(size_t stop_depth) {
  while (frames_.size() >= stop_depth) {
    Frame& fr = frames_.back();
    const FlatFunc& ff = flat()[fr.func];
    const FlatOp& op = ff.code[fr.pc];

    if (!op.synthetic) {
      account_instruction(op);
      if (stats_.instructions > options_.max_instructions) {
        throw TrapError("instruction limit exceeded");
      }
    }

    switch (op.op) {
      case Op::Nop:
      case Op::Block:
      case Op::Loop:
        ++fr.pc;
        break;
      case Op::Unreachable:
        throw TrapError("unreachable executed");
      case Op::If: {
        uint32_t cond = static_cast<uint32_t>(pop_raw());
        fr.pc = cond != 0 ? fr.pc + 1 : op.target_pc;
        break;
      }
      case Op::Br:
        do_branch(fr, op.target_pc, op.unwind, op.arity);
        break;
      case Op::BrIf: {
        uint32_t cond = static_cast<uint32_t>(pop_raw());
        if (cond != 0) {
          do_branch(fr, op.target_pc, op.unwind, op.arity);
        } else {
          ++fr.pc;
        }
        break;
      }
      case Op::BrTable: {
        uint32_t sel = static_cast<uint32_t>(pop_raw());
        const auto& table = ff.br_tables[op.a];
        const BrTarget& t =
            sel < table.size() - 1 ? table[sel] : table.back();
        do_branch(fr, t.pc, t.unwind, t.arity);
        break;
      }
      case Op::Return: {
        uint8_t arity = op.arity;
        size_t keep_from = stack_.size() - arity;
        for (uint8_t i = 0; i < arity; ++i) {
          stack_[fr.locals_base + i] = stack_[keep_from + i];
        }
        stack_.resize(fr.locals_base + arity);
        frames_.pop_back();
        break;
      }
      case Op::Call: {
        uint32_t callee = op.a;
        ++fr.pc;
        stats_.cycles += cost_.call_overhead_cycles;
        if (mod().is_import(callee)) {
          call_host(callee);
        } else {
          enter_frame(callee - static_cast<uint32_t>(mod().imports.size()));
        }
        break;
      }
      case Op::CallIndirect: {
        uint32_t elem = static_cast<uint32_t>(pop_raw());
        if (elem >= table_.size()) throw TrapError("table index out of bounds");
        int64_t callee = table_[elem];
        if (callee < 0) throw TrapError("uninitialised table element");
        const wasm::FuncType& expected = mod().types[op.a];
        const wasm::FuncType& actual =
            mod().func_type(static_cast<uint32_t>(callee));
        if (!(expected == actual)) {
          throw TrapError("indirect call type mismatch");
        }
        ++fr.pc;
        stats_.cycles += cost_.call_overhead_cycles;
        if (mod().is_import(static_cast<uint32_t>(callee))) {
          call_host(static_cast<uint32_t>(callee));
        } else {
          enter_frame(static_cast<uint32_t>(callee) -
                      static_cast<uint32_t>(mod().imports.size()));
        }
        break;
      }
      case Op::Drop:
        pop_raw();
        ++fr.pc;
        break;
      case Op::Select: {
        uint32_t cond = static_cast<uint32_t>(pop_raw());
        uint64_t b = pop_raw();
        uint64_t a = pop_raw();
        push_raw(cond != 0 ? a : b);
        ++fr.pc;
        break;
      }
      case Op::LocalGet:
        push_raw(stack_[fr.locals_base + op.a]);
        ++fr.pc;
        break;
      case Op::LocalSet:
        stack_[fr.locals_base + op.a] = pop_raw();
        ++fr.pc;
        break;
      case Op::LocalTee:
        stack_[fr.locals_base + op.a] = stack_.back();
        ++fr.pc;
        break;
      case Op::GlobalGet:
        push_raw(globals_[op.a]);
        ++fr.pc;
        break;
      case Op::GlobalSet:
        globals_[op.a] = pop_raw();
        ++fr.pc;
        break;

      // ---- memory ----
      case Op::MemorySize:
        push_raw(memory_->pages());
        ++fr.pc;
        break;
      case Op::MemoryGrow: {
        uint32_t delta = static_cast<uint32_t>(pop_raw());
        note_memory_growth();
        int32_t prev = memory_->grow(delta);
        note_memory_growth();
        push_raw(static_cast<uint32_t>(prev));
        ++fr.pc;
        break;
      }

#define LOAD_CASE(OPNAME, CTYPE, PUSH_AS)                                 \
  case Op::OPNAME: {                                                      \
    uint64_t addr = static_cast<uint32_t>(pop_raw());                     \
    uint64_t ea = memory_->check(addr, op.b, sizeof(CTYPE));              \
    charge_memory(ea, sizeof(CTYPE), false);                              \
    ++stats_.mem_loads;                                                   \
    CTYPE v = memory_->load<CTYPE>(addr, op.b);                           \
    push_raw(PUSH_AS);                                                    \
    ++fr.pc;                                                              \
    break;                                                                \
  }
      LOAD_CASE(I32Load, uint32_t, v)
      LOAD_CASE(I64Load, uint64_t, v)
      LOAD_CASE(F32Load, uint32_t, v)
      LOAD_CASE(F64Load, uint64_t, v)
      LOAD_CASE(I32Load8S, int8_t, static_cast<uint32_t>(static_cast<int32_t>(v)))
      LOAD_CASE(I32Load8U, uint8_t, v)
      LOAD_CASE(I32Load16S, int16_t, static_cast<uint32_t>(static_cast<int32_t>(v)))
      LOAD_CASE(I32Load16U, uint16_t, v)
      LOAD_CASE(I64Load8S, int8_t, static_cast<uint64_t>(static_cast<int64_t>(v)))
      LOAD_CASE(I64Load8U, uint8_t, v)
      LOAD_CASE(I64Load16S, int16_t, static_cast<uint64_t>(static_cast<int64_t>(v)))
      LOAD_CASE(I64Load16U, uint16_t, v)
      LOAD_CASE(I64Load32S, int32_t, static_cast<uint64_t>(static_cast<int64_t>(v)))
      LOAD_CASE(I64Load32U, uint32_t, v)
#undef LOAD_CASE

#define STORE_CASE(OPNAME, CTYPE, FROM_RAW)                               \
  case Op::OPNAME: {                                                      \
    uint64_t raw = pop_raw();                                             \
    uint64_t addr = static_cast<uint32_t>(pop_raw());                     \
    uint64_t ea = memory_->check(addr, op.b, sizeof(CTYPE));              \
    charge_memory(ea, sizeof(CTYPE), true);                               \
    ++stats_.mem_stores;                                                  \
    memory_->store<CTYPE>(addr, op.b, FROM_RAW);                          \
    ++fr.pc;                                                              \
    break;                                                                \
  }
      STORE_CASE(I32Store, uint32_t, static_cast<uint32_t>(raw))
      STORE_CASE(I64Store, uint64_t, raw)
      STORE_CASE(F32Store, uint32_t, static_cast<uint32_t>(raw))
      STORE_CASE(F64Store, uint64_t, raw)
      STORE_CASE(I32Store8, uint8_t, static_cast<uint8_t>(raw))
      STORE_CASE(I32Store16, uint16_t, static_cast<uint16_t>(raw))
      STORE_CASE(I64Store8, uint8_t, static_cast<uint8_t>(raw))
      STORE_CASE(I64Store16, uint16_t, static_cast<uint16_t>(raw))
      STORE_CASE(I64Store32, uint32_t, static_cast<uint32_t>(raw))
#undef STORE_CASE

      // ---- constants ----
      case Op::I32Const:
      case Op::I64Const:
      case Op::F32Const:
      case Op::F64Const:
        push_raw(op.b);
        ++fr.pc;
        break;

#define UN_I32(OPNAME, EXPR)                                 \
  case Op::OPNAME: {                                         \
    uint32_t a = static_cast<uint32_t>(pop_raw());           \
    (void)a;                                                 \
    push_raw(static_cast<uint32_t>(EXPR));                   \
    ++fr.pc;                                                 \
    break;                                                   \
  }
#define BIN_I32(OPNAME, EXPR)                                \
  case Op::OPNAME: {                                         \
    uint32_t b = static_cast<uint32_t>(pop_raw());           \
    uint32_t a = static_cast<uint32_t>(pop_raw());           \
    (void)a;                                                 \
    (void)b;                                                 \
    push_raw(static_cast<uint32_t>(EXPR));                   \
    ++fr.pc;                                                 \
    break;                                                   \
  }
#define UN_I64(OPNAME, EXPR)                                 \
  case Op::OPNAME: {                                         \
    uint64_t a = pop_raw();                                  \
    (void)a;                                                 \
    push_raw(static_cast<uint64_t>(EXPR));                   \
    ++fr.pc;                                                 \
    break;                                                   \
  }
#define BIN_I64(OPNAME, EXPR)                                \
  case Op::OPNAME: {                                         \
    uint64_t b = pop_raw();                                  \
    uint64_t a = pop_raw();                                  \
    (void)a;                                                 \
    (void)b;                                                 \
    push_raw(static_cast<uint64_t>(EXPR));                   \
    ++fr.pc;                                                 \
    break;                                                   \
  }

      // ---- i32 comparisons ----
      UN_I32(I32Eqz, a == 0)
      BIN_I32(I32Eq, a == b)
      BIN_I32(I32Ne, a != b)
      BIN_I32(I32LtS, static_cast<int32_t>(a) < static_cast<int32_t>(b))
      BIN_I32(I32LtU, a < b)
      BIN_I32(I32GtS, static_cast<int32_t>(a) > static_cast<int32_t>(b))
      BIN_I32(I32GtU, a > b)
      BIN_I32(I32LeS, static_cast<int32_t>(a) <= static_cast<int32_t>(b))
      BIN_I32(I32LeU, a <= b)
      BIN_I32(I32GeS, static_cast<int32_t>(a) >= static_cast<int32_t>(b))
      BIN_I32(I32GeU, a >= b)

      // ---- i64 comparisons (results are i32) ----
      case Op::I64Eqz: {
        uint64_t a = pop_raw();
        push_raw(static_cast<uint32_t>(a == 0));
        ++fr.pc;
        break;
      }
#define CMP_I64(OPNAME, EXPR)                                \
  case Op::OPNAME: {                                         \
    uint64_t b = pop_raw();                                  \
    uint64_t a = pop_raw();                                  \
    (void)a;                                                 \
    (void)b;                                                 \
    push_raw(static_cast<uint32_t>(EXPR));                   \
    ++fr.pc;                                                 \
    break;                                                   \
  }
      CMP_I64(I64Eq, a == b)
      CMP_I64(I64Ne, a != b)
      CMP_I64(I64LtS, static_cast<int64_t>(a) < static_cast<int64_t>(b))
      CMP_I64(I64LtU, a < b)
      CMP_I64(I64GtS, static_cast<int64_t>(a) > static_cast<int64_t>(b))
      CMP_I64(I64GtU, a > b)
      CMP_I64(I64LeS, static_cast<int64_t>(a) <= static_cast<int64_t>(b))
      CMP_I64(I64LeU, a <= b)
      CMP_I64(I64GeS, static_cast<int64_t>(a) >= static_cast<int64_t>(b))
      CMP_I64(I64GeU, a >= b)
#undef CMP_I64

#define CMP_F(OPNAME, TYPE, EXPR)                            \
  case Op::OPNAME: {                                         \
    TYPE b = std::bit_cast<TYPE>(                            \
        static_cast<std::conditional_t<sizeof(TYPE) == 4, uint32_t, uint64_t>>( \
            pop_raw()));                                     \
    TYPE a = std::bit_cast<TYPE>(                            \
        static_cast<std::conditional_t<sizeof(TYPE) == 4, uint32_t, uint64_t>>( \
            pop_raw()));                                     \
    (void)a;                                                 \
    (void)b;                                                 \
    push_raw(static_cast<uint32_t>(EXPR));                   \
    ++fr.pc;                                                 \
    break;                                                   \
  }
      CMP_F(F32Eq, float, a == b)
      CMP_F(F32Ne, float, a != b)
      CMP_F(F32Lt, float, a < b)
      CMP_F(F32Gt, float, a > b)
      CMP_F(F32Le, float, a <= b)
      CMP_F(F32Ge, float, a >= b)
      CMP_F(F64Eq, double, a == b)
      CMP_F(F64Ne, double, a != b)
      CMP_F(F64Lt, double, a < b)
      CMP_F(F64Gt, double, a > b)
      CMP_F(F64Le, double, a <= b)
      CMP_F(F64Ge, double, a >= b)
#undef CMP_F

      // ---- i32 arithmetic ----
      UN_I32(I32Clz, std::countl_zero(a))
      UN_I32(I32Ctz, std::countr_zero(a))
      UN_I32(I32Popcnt, std::popcount(a))
      BIN_I32(I32Add, a + b)
      BIN_I32(I32Sub, a - b)
      BIN_I32(I32Mul, a * b)
      case Op::I32DivS: {
        int32_t b = static_cast<int32_t>(pop_raw());
        int32_t a = static_cast<int32_t>(pop_raw());
        if (b == 0) throw TrapError("integer divide by zero");
        if (a == INT32_MIN && b == -1) throw TrapError("integer overflow");
        push_raw(static_cast<uint32_t>(a / b));
        ++fr.pc;
        break;
      }
      case Op::I32DivU: {
        uint32_t b = static_cast<uint32_t>(pop_raw());
        uint32_t a = static_cast<uint32_t>(pop_raw());
        if (b == 0) throw TrapError("integer divide by zero");
        push_raw(a / b);
        ++fr.pc;
        break;
      }
      case Op::I32RemS: {
        int32_t b = static_cast<int32_t>(pop_raw());
        int32_t a = static_cast<int32_t>(pop_raw());
        if (b == 0) throw TrapError("integer divide by zero");
        int32_t r = (a == INT32_MIN && b == -1) ? 0 : a % b;
        push_raw(static_cast<uint32_t>(r));
        ++fr.pc;
        break;
      }
      case Op::I32RemU: {
        uint32_t b = static_cast<uint32_t>(pop_raw());
        uint32_t a = static_cast<uint32_t>(pop_raw());
        if (b == 0) throw TrapError("integer divide by zero");
        push_raw(a % b);
        ++fr.pc;
        break;
      }
      BIN_I32(I32And, a & b)
      BIN_I32(I32Or, a | b)
      BIN_I32(I32Xor, a ^ b)
      BIN_I32(I32Shl, a << (b & 31))
      BIN_I32(I32ShrS, static_cast<uint32_t>(static_cast<int32_t>(a) >> (b & 31)))
      BIN_I32(I32ShrU, a >> (b & 31))
      BIN_I32(I32Rotl, std::rotl(a, static_cast<int>(b & 31)))
      BIN_I32(I32Rotr, std::rotr(a, static_cast<int>(b & 31)))

      // ---- i64 arithmetic ----
      UN_I64(I64Clz, std::countl_zero(a))
      UN_I64(I64Ctz, std::countr_zero(a))
      UN_I64(I64Popcnt, std::popcount(a))
      BIN_I64(I64Add, a + b)
      BIN_I64(I64Sub, a - b)
      BIN_I64(I64Mul, a * b)
      case Op::I64DivS: {
        int64_t b = static_cast<int64_t>(pop_raw());
        int64_t a = static_cast<int64_t>(pop_raw());
        if (b == 0) throw TrapError("integer divide by zero");
        if (a == INT64_MIN && b == -1) throw TrapError("integer overflow");
        push_raw(static_cast<uint64_t>(a / b));
        ++fr.pc;
        break;
      }
      case Op::I64DivU: {
        uint64_t b = pop_raw();
        uint64_t a = pop_raw();
        if (b == 0) throw TrapError("integer divide by zero");
        push_raw(a / b);
        ++fr.pc;
        break;
      }
      case Op::I64RemS: {
        int64_t b = static_cast<int64_t>(pop_raw());
        int64_t a = static_cast<int64_t>(pop_raw());
        if (b == 0) throw TrapError("integer divide by zero");
        int64_t r = (a == INT64_MIN && b == -1) ? 0 : a % b;
        push_raw(static_cast<uint64_t>(r));
        ++fr.pc;
        break;
      }
      case Op::I64RemU: {
        uint64_t b = pop_raw();
        uint64_t a = pop_raw();
        if (b == 0) throw TrapError("integer divide by zero");
        push_raw(a % b);
        ++fr.pc;
        break;
      }
      BIN_I64(I64And, a & b)
      BIN_I64(I64Or, a | b)
      BIN_I64(I64Xor, a ^ b)
      BIN_I64(I64Shl, a << (b & 63))
      BIN_I64(I64ShrS, static_cast<uint64_t>(static_cast<int64_t>(a) >> (b & 63)))
      BIN_I64(I64ShrU, a >> (b & 63))
      BIN_I64(I64Rotl, std::rotl(a, static_cast<int>(b & 63)))
      BIN_I64(I64Rotr, std::rotr(a, static_cast<int>(b & 63)))

#undef UN_I32
#undef BIN_I32
#undef UN_I64
#undef BIN_I64

#define UN_F32(OPNAME, EXPR)                                 \
  case Op::OPNAME: {                                         \
    float a = as_f32(pop_raw());                             \
    (void)a;                                                 \
    push_raw(from_f32(EXPR));                                \
    ++fr.pc;                                                 \
    break;                                                   \
  }
#define BIN_F32(OPNAME, EXPR)                                \
  case Op::OPNAME: {                                         \
    float b = as_f32(pop_raw());                             \
    float a = as_f32(pop_raw());                             \
    (void)a;                                                 \
    (void)b;                                                 \
    push_raw(from_f32(EXPR));                                \
    ++fr.pc;                                                 \
    break;                                                   \
  }
#define UN_F64(OPNAME, EXPR)                                 \
  case Op::OPNAME: {                                         \
    double a = as_f64(pop_raw());                            \
    (void)a;                                                 \
    push_raw(from_f64(EXPR));                                \
    ++fr.pc;                                                 \
    break;                                                   \
  }
#define BIN_F64(OPNAME, EXPR)                                \
  case Op::OPNAME: {                                         \
    double b = as_f64(pop_raw());                            \
    double a = as_f64(pop_raw());                            \
    (void)a;                                                 \
    (void)b;                                                 \
    push_raw(from_f64(EXPR));                                \
    ++fr.pc;                                                 \
    break;                                                   \
  }

      UN_F32(F32Abs, std::fabs(a))
      UN_F32(F32Neg, -a)
      UN_F32(F32Ceil, std::ceil(a))
      UN_F32(F32Floor, std::floor(a))
      UN_F32(F32Trunc, std::trunc(a))
      UN_F32(F32Nearest, std::nearbyint(a))
      UN_F32(F32Sqrt, std::sqrt(a))
      BIN_F32(F32Add, a + b)
      BIN_F32(F32Sub, a - b)
      BIN_F32(F32Mul, a * b)
      BIN_F32(F32Div, a / b)
      BIN_F32(F32Min, wasm_min(a, b))
      BIN_F32(F32Max, wasm_max(a, b))
      BIN_F32(F32Copysign, std::copysign(a, b))

      UN_F64(F64Abs, std::fabs(a))
      UN_F64(F64Neg, -a)
      UN_F64(F64Ceil, std::ceil(a))
      UN_F64(F64Floor, std::floor(a))
      UN_F64(F64Trunc, std::trunc(a))
      UN_F64(F64Nearest, std::nearbyint(a))
      UN_F64(F64Sqrt, std::sqrt(a))
      BIN_F64(F64Add, a + b)
      BIN_F64(F64Sub, a - b)
      BIN_F64(F64Mul, a * b)
      BIN_F64(F64Div, a / b)
      BIN_F64(F64Min, wasm_min(a, b))
      BIN_F64(F64Max, wasm_max(a, b))
      BIN_F64(F64Copysign, std::copysign(a, b))

#undef UN_F32
#undef BIN_F32
#undef UN_F64
#undef BIN_F64

      // ---- conversions ----
      case Op::I32WrapI64:
        push_raw(static_cast<uint32_t>(pop_raw()));
        ++fr.pc;
        break;
      case Op::I32TruncF32S:
        push_raw(static_cast<uint32_t>(trunc_i32_s(as_f32(pop_raw()))));
        ++fr.pc;
        break;
      case Op::I32TruncF32U:
        push_raw(trunc_i32_u(as_f32(pop_raw())));
        ++fr.pc;
        break;
      case Op::I32TruncF64S:
        push_raw(static_cast<uint32_t>(trunc_i32_s(as_f64(pop_raw()))));
        ++fr.pc;
        break;
      case Op::I32TruncF64U:
        push_raw(trunc_i32_u(as_f64(pop_raw())));
        ++fr.pc;
        break;
      case Op::I64ExtendI32S:
        push_raw(static_cast<uint64_t>(
            static_cast<int64_t>(static_cast<int32_t>(pop_raw()))));
        ++fr.pc;
        break;
      case Op::I64ExtendI32U:
        push_raw(static_cast<uint32_t>(pop_raw()));
        ++fr.pc;
        break;
      case Op::I64TruncF32S:
        push_raw(static_cast<uint64_t>(trunc_i64_s(as_f32(pop_raw()))));
        ++fr.pc;
        break;
      case Op::I64TruncF32U:
        push_raw(trunc_i64_u(as_f32(pop_raw())));
        ++fr.pc;
        break;
      case Op::I64TruncF64S:
        push_raw(static_cast<uint64_t>(trunc_i64_s(as_f64(pop_raw()))));
        ++fr.pc;
        break;
      case Op::I64TruncF64U:
        push_raw(trunc_i64_u(as_f64(pop_raw())));
        ++fr.pc;
        break;
      case Op::F32ConvertI32S:
        push_raw(from_f32(static_cast<float>(static_cast<int32_t>(pop_raw()))));
        ++fr.pc;
        break;
      case Op::F32ConvertI32U:
        push_raw(from_f32(static_cast<float>(static_cast<uint32_t>(pop_raw()))));
        ++fr.pc;
        break;
      case Op::F32ConvertI64S:
        push_raw(from_f32(static_cast<float>(static_cast<int64_t>(pop_raw()))));
        ++fr.pc;
        break;
      case Op::F32ConvertI64U:
        push_raw(from_f32(static_cast<float>(pop_raw())));
        ++fr.pc;
        break;
      case Op::F32DemoteF64:
        push_raw(from_f32(static_cast<float>(as_f64(pop_raw()))));
        ++fr.pc;
        break;
      case Op::F64ConvertI32S:
        push_raw(from_f64(static_cast<double>(static_cast<int32_t>(pop_raw()))));
        ++fr.pc;
        break;
      case Op::F64ConvertI32U:
        push_raw(from_f64(static_cast<double>(static_cast<uint32_t>(pop_raw()))));
        ++fr.pc;
        break;
      case Op::F64ConvertI64S:
        push_raw(from_f64(static_cast<double>(static_cast<int64_t>(pop_raw()))));
        ++fr.pc;
        break;
      case Op::F64ConvertI64U:
        push_raw(from_f64(static_cast<double>(pop_raw())));
        ++fr.pc;
        break;
      case Op::F64PromoteF32:
        push_raw(from_f64(static_cast<double>(as_f32(pop_raw()))));
        ++fr.pc;
        break;
      case Op::I32ReinterpretF32:
      case Op::F32ReinterpretI32:
        // Same 32-bit pattern, reinterpret is a no-op on raw slots (the low
        // 32 bits already hold the payload).
        push_raw(static_cast<uint32_t>(pop_raw()));
        ++fr.pc;
        break;
      case Op::I64ReinterpretF64:
      case Op::F64ReinterpretI64:
        ++fr.pc;
        break;
    }
  }
}

}  // namespace acctee::interp
