#include "interp/instance.hpp"

#include <bit>
#include <cmath>
#include <limits>
#include <type_traits>

#include "obs/profile.hpp"

#if ACCTEE_HAS_SHADOW_METER
#include "interp/shadow_meter.hpp"
#endif

namespace acctee::interp {

namespace {

using wasm::Op;

float as_f32(uint64_t bits) {
  return std::bit_cast<float>(static_cast<uint32_t>(bits));
}
double as_f64(uint64_t bits) { return std::bit_cast<double>(bits); }
uint64_t from_f32(float v) { return std::bit_cast<uint32_t>(v); }
uint64_t from_f64(double v) { return std::bit_cast<uint64_t>(v); }

template <typename F>
F wasm_min(F a, F b) {
  if (std::isnan(a) || std::isnan(b)) {
    return std::numeric_limits<F>::quiet_NaN();
  }
  if (a == b) return std::signbit(a) ? a : b;  // min(-0, +0) = -0
  return a < b ? a : b;
}

template <typename F>
F wasm_max(F a, F b) {
  if (std::isnan(a) || std::isnan(b)) {
    return std::numeric_limits<F>::quiet_NaN();
  }
  if (a == b) return std::signbit(a) ? b : a;  // max(-0, +0) = +0
  return a > b ? a : b;
}

int32_t trunc_i32_s(double x) {
  if (std::isnan(x)) throw TrapError("invalid conversion to integer");
  double t = std::trunc(x);
  if (t < -2147483648.0 || t > 2147483647.0) {
    throw TrapError("integer overflow in trunc");
  }
  return static_cast<int32_t>(t);
}

uint32_t trunc_i32_u(double x) {
  if (std::isnan(x)) throw TrapError("invalid conversion to integer");
  double t = std::trunc(x);
  if (t < 0.0 || t > 4294967295.0) throw TrapError("integer overflow in trunc");
  return static_cast<uint32_t>(t);
}

int64_t trunc_i64_s(double x) {
  if (std::isnan(x)) throw TrapError("invalid conversion to integer");
  double t = std::trunc(x);
  if (t < -9223372036854775808.0 || t >= 9223372036854775808.0) {
    throw TrapError("integer overflow in trunc");
  }
  return static_cast<int64_t>(t);
}

uint64_t trunc_i64_u(double x) {
  if (std::isnan(x)) throw TrapError("invalid conversion to integer");
  double t = std::trunc(x);
  if (t < 0.0 || t >= 18446744073709551616.0) {
    throw TrapError("integer overflow in trunc");
  }
  return static_cast<uint64_t>(t);
}

}  // namespace

Instance::Instance(wasm::Module module, ImportMap imports, Options options)
    : Instance(compile(std::move(module),
                       CompiledModule::CompileOptions{.validate = false}),
               std::move(imports), options) {}

Instance::Instance(CompiledModulePtr compiled, ImportMap imports,
                   Options options)
    : compiled_(std::move(compiled)),
      imports_(std::move(imports)),
      options_(options),
      cost_(options.cost.value_or(CostConfig::for_platform(options.platform))),
      cache_(options.cache_config) {
  // Link imports.
  for (const auto& imp : mod().imports) {
    const HostEntry* entry = imports_.find(imp.module, imp.name);
    if (entry == nullptr) {
      throw LinkError("unresolved import " + imp.module + "." + imp.name);
    }
    if (!(entry->type == mod().types.at(imp.type_index))) {
      throw LinkError("import type mismatch for " + imp.module + "." +
                      imp.name + ": module wants " +
                      mod().types[imp.type_index].to_string() +
                      ", host provides " + entry->type.to_string());
    }
  }

  // Memory + data segments.
  if (mod().memory) {
    memory_ = std::make_unique<LinearMemory>(mod().memory->min,
                                             mod().memory->max);
    for (const auto& seg : mod().data) {
      memory_->write_bytes(seg.offset, seg.bytes);
    }
    stats_.peak_memory_bytes = memory_->size_bytes();
  } else if (!mod().data.empty()) {
    throw LinkError("data segment without memory");
  }

  // Table + element segments.
  if (mod().table) {
    table_.assign(mod().table->min, -1);
    for (const auto& seg : mod().elems) {
      if (seg.offset + seg.func_indices.size() > table_.size()) {
        throw LinkError("elem segment out of table bounds");
      }
      for (size_t i = 0; i < seg.func_indices.size(); ++i) {
        table_[seg.offset + i] = seg.func_indices[i];
      }
    }
  }

  // Globals.
  globals_.reserve(mod().globals.size());
  for (const auto& g : mod().globals) globals_.push_back(g.init.imm);

  if (mod().start) {
    invoke_index(*mod().start, {});
  }
}

void Instance::reset() {
  // Mirror of the constructor's instantiation steps, reusing the existing
  // allocations (memory backing store, stack/frame capacity, cache arrays).
  // Import links are unchanged: the map and the module both outlive resets.
  if (memory_ != nullptr) {
    memory_->reset(mod().memory->min);
    for (const auto& seg : mod().data) {
      memory_->write_bytes(seg.offset, seg.bytes);
    }
  }
  if (mod().table) {
    table_.assign(mod().table->min, -1);
    for (const auto& seg : mod().elems) {
      for (size_t i = 0; i < seg.func_indices.size(); ++i) {
        table_[seg.offset + i] = seg.func_indices[i];
      }
    }
  }
  globals_.clear();
  for (const auto& g : mod().globals) globals_.push_back(g.init.imm);
  stack_.clear();
  frames_.clear();
  cache_.reset();
  stats_ = ExecStats{};
  if (memory_ != nullptr) stats_.peak_memory_bytes = memory_->size_bytes();
  block_charged_ = false;
  charged_end_pc_ = 0;
  epc_fault_accum_ = 0;
  integral_mark_ = 0;
  checkpoint_interval_ = 0;
  next_checkpoint_ = UINT64_MAX;
  checkpoint_ = nullptr;
  meter_ = nullptr;
  if (mod().start) {
    invoke_index(*mod().start, {});
  }
}

void Instance::set_shadow_meter(ShadowMeter* meter) {
  meter_ = meter;
#if ACCTEE_HAS_SHADOW_METER
  if (meter_ != nullptr && memory_ != nullptr) {
    meter_->on_memory_size(memory_->size_bytes());
  }
#endif
}

Values Instance::invoke(std::string_view export_name, const Values& args) {
  auto index = mod().find_export(export_name, wasm::ExternKind::Func);
  if (!index) {
    throw LinkError("no exported function named '" + std::string(export_name) +
                    "'");
  }
  return invoke_index(*index, args);
}

Values Instance::invoke_index(uint32_t func_index, const Values& args) {
  const wasm::FuncType& type = mod().func_type(func_index);
  if (args.size() != type.params.size()) {
    throw LinkError("argument count mismatch");
  }
  for (size_t i = 0; i < args.size(); ++i) {
    if (args[i].type != type.params[i]) {
      throw LinkError("argument type mismatch at position " +
                      std::to_string(i));
    }
  }
  if (mod().is_import(func_index)) {
    throw LinkError("cannot invoke an imported function directly");
  }

  size_t stack_mark = stack_.size();
  for (const auto& a : args) push_raw(a.bits);
  enter_frame(func_index - static_cast<uint32_t>(mod().imports.size()));
  run(frames_.size());

  Values results(type.results.size());
  for (size_t i = type.results.size(); i-- > 0;) {
    results[i] = TypedValue{type.results[i], pop_raw()};
  }
  if (stack_.size() != stack_mark) {
    stack_.resize(stack_mark);  // defensive; should not happen
  }
  // Fold the tail of the memory-size integral.
  note_memory_growth();
  return results;
}

TypedValue Instance::read_global(std::string_view export_name) const {
  auto index = mod().find_export(export_name, wasm::ExternKind::Global);
  if (!index) {
    throw LinkError("no exported global named '" + std::string(export_name) +
                    "'");
  }
  return read_global_index(*index);
}

TypedValue Instance::read_global_index(uint32_t global_index) const {
  if (global_index >= globals_.size()) {
    throw LinkError("global index out of range");
  }
  return TypedValue{mod().globals[global_index].type,
                    globals_[global_index]};
}

void Instance::enter_frame(uint32_t defined_index) {
  if (frames_.size() >= options_.max_call_depth) {
    throw TrapError("call stack exhausted");
  }
  const FlatFunc& ff = flat()[defined_index];
  Frame frame;
  frame.func = defined_index;
  frame.pc = 0;
  frame.locals_base = static_cast<uint32_t>(stack_.size() - ff.num_params);
  // Zero-initialise non-parameter locals.
  stack_.resize(stack_.size() + ff.local_types.size() - ff.num_params, 0);
  frame.operand_base = static_cast<uint32_t>(stack_.size());
  frames_.push_back(frame);
}

void Instance::call_host(uint32_t import_index) {
  const wasm::Import& imp = mod().imports[import_index];
  const HostEntry* entry = imports_.find(imp.module, imp.name);
  const wasm::FuncType& type = mod().types[imp.type_index];

  Values args(type.params.size());
  for (size_t i = type.params.size(); i-- > 0;) {
    args[i] = TypedValue{type.params[i], pop_raw()};
  }
  HostContext ctx{memory_.get(), &stats_};
  ++stats_.host_calls;
  stats_.cycles += cost_.host_call_cycles;
#if ACCTEE_HAS_SHADOW_METER
  if (meter_ != nullptr) {
    ctx.meter = meter_;
    meter_->on_host_call(cost_.host_call_cycles);
  }
#endif
  Values results = entry->func(args, ctx);
  if (results.size() != type.results.size()) {
    throw LinkError("host function returned wrong result count for " +
                    imp.module + "." + imp.name);
  }
  for (size_t i = 0; i < results.size(); ++i) {
    if (results[i].type != type.results[i]) {
      throw LinkError("host function result type mismatch for " + imp.module +
                      "." + imp.name);
    }
    push_raw(results[i].bits);
  }
}

void Instance::do_branch(Frame& frame, uint32_t target_pc, uint32_t unwind,
                         uint8_t arity) {
  size_t keep_from = stack_.size() - arity;
  size_t new_top = frame.operand_base + unwind;
  for (uint8_t i = 0; i < arity; ++i) {
    stack_[new_top + i] = stack_[keep_from + i];
  }
  stack_.resize(new_top + arity);
  frame.pc = target_pc;
}

void Instance::charge_memory(uint64_t effective_addr, uint32_t size,
                             bool is_write) {
#if ACCTEE_HAS_SHADOW_METER
  // Shadow replay through the meter's private hierarchy — independent of
  // (and unaffected by) the billed cache model below.
  if (meter_ != nullptr) meter_->on_memory_access(effective_addr, size, is_write);
#endif
  stats_.cycles += cost_.bounds_check_cycles;
  if (!options_.cache_model) return;
  cachesim::AccessResult res = cache_.access(effective_addr, size, is_write);
  stats_.cycles += res.cycles;
  if (res.llc_miss) {
    ++stats_.llc_misses;
    stats_.cycles += cost_.mee_cycles_per_llc_miss;
    if (cost_.epc_limit_bytes != 0 && memory_ != nullptr) {
      uint64_t footprint =
          cost_.enclave_base_footprint + memory_->size_bytes();
      if (footprint > cost_.epc_limit_bytes) {
        // Deterministic fractional paging: a fraction p of LLC misses hits a
        // page that is not EPC-resident.
        double p = 1.0 - static_cast<double>(cost_.epc_limit_bytes) /
                             static_cast<double>(footprint);
        epc_fault_accum_ += p;
        if (epc_fault_accum_ >= 1.0) {
          epc_fault_accum_ -= 1.0;
          ++stats_.epc_faults;
          stats_.cycles += cost_.epc_fault_cycles;
        }
      }
    }
  }
}

void Instance::note_memory_growth() {
  if (memory_ == nullptr) return;
  uint64_t size = memory_->size_bytes();
  stats_.memory_integral += (stats_.instructions - integral_mark_) * size;
  integral_mark_ = stats_.instructions;
  if (size > stats_.peak_memory_bytes) stats_.peak_memory_bytes = size;
#if ACCTEE_HAS_SHADOW_METER
  // run_loop.inc calls this on both sides of memory.grow, so size deltas
  // between consecutive observations are exactly the grow churn.
  if (meter_ != nullptr) meter_->on_memory_size(size);
#endif
}

void Instance::set_checkpoint(uint64_t interval, CheckpointHandler handler) {
  checkpoint_interval_ = interval;
  checkpoint_ = std::move(handler);
  next_checkpoint_ =
      interval == 0 ? UINT64_MAX : stats_.instructions + interval;
}

void Instance::account_instruction(const FlatOp& op) {
  ++stats_.instructions;
  ++stats_.per_op[static_cast<size_t>(op.op)];
  stats_.cycles += wasm::op_info(op.op).base_cost;
  if (stats_.instructions >= next_checkpoint_) {
    next_checkpoint_ += checkpoint_interval_;
    note_memory_growth();  // fold the integral up to this point
    checkpoint_(*this);
  }
}

// Removes the accounting of the pre-charged but never-executed suffix of
// the current block, so the ExecStats a trap leaves behind are bit-identical
// to per-instruction accounting (where the trapping instruction is the last
// one counted). Cold path: runs only when a trap unwinds out of run().
//
// The suffix walk always runs over the flattened code (the authoritative
// accounting representation). When the trapping loop was a bytecode backend,
// fr.pc indexes the lowered stream: the first never-executed flat pc is the
// current bytecode instruction's flat_end — exact even for fused
// instructions, because superinstructions fuse only non-trapping
// constituents (bytecode.def), so the trapping instruction is always the
// sole constituent of its bytecode slot.
void Instance::uncharge_block_suffix(bool bytecode) noexcept {
  if (!block_charged_) return;
  block_charged_ = false;
  if (frames_.empty()) return;
  const Frame& fr = frames_.back();
  const FlatFunc& ff = flat()[fr.func];
  const uint32_t from =
      bytecode ? lowered()[fr.func].code[fr.pc].flat_end : fr.pc + 1;
  for (uint32_t p = from; p < charged_end_pc_; ++p) {
    const FlatOp& o = ff.code[p];
    if (o.synthetic) continue;
    --stats_.instructions;
    --stats_.per_op[static_cast<size_t>(o.op)];
    stats_.cycles -= wasm::op_info(o.op).base_cost;
  }
}

void Instance::run(size_t stop_depth) {
  const DispatchMode mode = options_.dispatch;
  const bool profiled = options_.profiler != nullptr;
  // Backend selection with graceful fallback: bytecode requires both the
  // compiled-in backend and a lowered module; threaded requires the
  // compiled-in computed-goto loops. Auto prefers bytecode-goto, then
  // flattened-goto, then switch. Every backend is observationally
  // identical — selection can never change ExecStats.
#if ACCTEE_HAS_BYTECODE
  const bool use_bytecode =
      compiled_->has_lowering() &&
      (mode == DispatchMode::Auto || mode == DispatchMode::Bytecode ||
       mode == DispatchMode::BytecodeSwitch);
#else
  const bool use_bytecode = false;
#endif
#if ACCTEE_HAS_THREADED_DISPATCH
  const bool threaded =
      mode != DispatchMode::Switch && mode != DispatchMode::BytecodeSwitch;
#else
  const bool threaded = false;
#endif
  try {
#if ACCTEE_HAS_BYTECODE
    if (use_bytecode) {
#if ACCTEE_HAS_THREADED_DISPATCH
      if (threaded) {
        profiled ? run_bc_threaded_profiled(stop_depth)
                 : run_bc_threaded(stop_depth);
      } else {
        profiled ? run_bc_switch_profiled(stop_depth)
                 : run_bc_switch(stop_depth);
      }
#else
      profiled ? run_bc_switch_profiled(stop_depth)
               : run_bc_switch(stop_depth);
#endif
    } else
#endif
#if ACCTEE_HAS_THREADED_DISPATCH
        if (threaded) {
      profiled ? run_threaded_profiled(stop_depth) : run_threaded(stop_depth);
    } else {
      profiled ? run_switch_profiled(stop_depth) : run_switch(stop_depth);
    }
#else
    {
      (void)threaded;
      profiled ? run_switch_profiled(stop_depth) : run_switch(stop_depth);
    }
#endif
  } catch (...) {
    uncharge_block_suffix(use_bytecode);
    throw;
  }
  block_charged_ = false;
}

// run_loop.inc instantiations: (code representation × dispatch technique ×
// profiling). All are observationally identical; see run_loop.inc.

void Instance::run_switch(size_t stop_depth) {
#define ACCTEE_BC 0
#define ACCTEE_THREADED 0
#define ACCTEE_PROFILE 0
#include "interp/run_loop.inc"
#undef ACCTEE_PROFILE
#undef ACCTEE_THREADED
#undef ACCTEE_BC
}

void Instance::run_switch_profiled(size_t stop_depth) {
#define ACCTEE_BC 0
#define ACCTEE_THREADED 0
#define ACCTEE_PROFILE 1
#include "interp/run_loop.inc"
#undef ACCTEE_PROFILE
#undef ACCTEE_THREADED
#undef ACCTEE_BC
}

#if ACCTEE_HAS_THREADED_DISPATCH
void Instance::run_threaded(size_t stop_depth) {
#define ACCTEE_BC 0
#define ACCTEE_THREADED 1
#define ACCTEE_PROFILE 0
#include "interp/run_loop.inc"
#undef ACCTEE_PROFILE
#undef ACCTEE_THREADED
#undef ACCTEE_BC
}

void Instance::run_threaded_profiled(size_t stop_depth) {
#define ACCTEE_BC 0
#define ACCTEE_THREADED 1
#define ACCTEE_PROFILE 1
#include "interp/run_loop.inc"
#undef ACCTEE_PROFILE
#undef ACCTEE_THREADED
#undef ACCTEE_BC
}
#endif

#if ACCTEE_HAS_BYTECODE
void Instance::run_bc_switch(size_t stop_depth) {
#define ACCTEE_BC 1
#define ACCTEE_THREADED 0
#define ACCTEE_PROFILE 0
#include "interp/run_loop.inc"
#undef ACCTEE_PROFILE
#undef ACCTEE_THREADED
#undef ACCTEE_BC
}

void Instance::run_bc_switch_profiled(size_t stop_depth) {
#define ACCTEE_BC 1
#define ACCTEE_THREADED 0
#define ACCTEE_PROFILE 1
#include "interp/run_loop.inc"
#undef ACCTEE_PROFILE
#undef ACCTEE_THREADED
#undef ACCTEE_BC
}

#if ACCTEE_HAS_THREADED_DISPATCH
void Instance::run_bc_threaded(size_t stop_depth) {
#define ACCTEE_BC 1
#define ACCTEE_THREADED 1
#define ACCTEE_PROFILE 0
#include "interp/run_loop.inc"
#undef ACCTEE_PROFILE
#undef ACCTEE_THREADED
#undef ACCTEE_BC
}

void Instance::run_bc_threaded_profiled(size_t stop_depth) {
#define ACCTEE_BC 1
#define ACCTEE_THREADED 1
#define ACCTEE_PROFILE 1
#include "interp/run_loop.inc"
#undef ACCTEE_PROFILE
#undef ACCTEE_THREADED
#undef ACCTEE_BC
}
#endif
#endif  // ACCTEE_HAS_BYTECODE

}  // namespace acctee::interp
