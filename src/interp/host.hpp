// Host-function linking: how the embedder exposes primitives (I/O, logging)
// to sandboxed Wasm code.
//
// WebAssembly has no I/O of its own (paper §3.4); the runtime exposes
// imports. In AccTEE the runtime is inside the trust boundary, so the
// accounting of I/O bytes happens here, in the host-function layer, not in
// instrumented Wasm code.
#pragma once

#include <functional>
#include <map>
#include <string>

#include "interp/memory.hpp"
#include "interp/value.hpp"

namespace acctee::interp {

struct ExecStats;
class ShadowMeter;

/// Context passed to host functions: the caller's linear memory plus the
/// stats block, so I/O wrappers can account transferred bytes.
struct HostContext {
  LinearMemory* memory = nullptr;  // null if the module has no memory
  ExecStats* stats = nullptr;
  /// Shadow-meter sink (interp/shadow_meter.hpp), non-null only while an
  /// attached meter observes the run. Host functions self-report their true
  /// work (e.g. per-byte I/O cost) here; they must never report billed
  /// state through it — stats above stays the only accounting channel.
  ShadowMeter* meter = nullptr;
};

/// A host function: receives typed arguments, returns typed results.
/// Must return exactly the declared result count/types (checked at call).
using HostFunc = std::function<Values(std::span<const TypedValue>, HostContext&)>;

/// One importable entry.
struct HostEntry {
  wasm::FuncType type;
  HostFunc func;
};

/// Import namespace: (module, name) -> host function.
class ImportMap {
 public:
  void add(const std::string& module, const std::string& name,
           wasm::FuncType type, HostFunc func) {
    entries_[key(module, name)] = HostEntry{std::move(type), std::move(func)};
  }

  const HostEntry* find(const std::string& module,
                        const std::string& name) const {
    auto it = entries_.find(key(module, name));
    return it == entries_.end() ? nullptr : &it->second;
  }

  bool empty() const { return entries_.empty(); }

 private:
  static std::string key(const std::string& module, const std::string& name) {
    return module + "\x1f" + name;
  }
  std::map<std::string, HostEntry> entries_;
};

}  // namespace acctee::interp
