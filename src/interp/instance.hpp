// A Wasm module instance: the execution half of AccTEE's two-way sandbox.
//
// Instantiation validates nothing by itself — callers must run the validator
// first (the accounting enclave in src/core always does). Execution is a
// flat-code interpreter with:
//   * full MVP numeric/trap semantics,
//   * bounds-checked linear memory (SFI),
//   * a deterministic simulated-cycle cost model (interp/cost.hpp) with a
//     cache hierarchy behind loads/stores and optional SGX EPC/MEE costs,
//   * complete execution statistics (the ground truth that AccTEE's
//     instrumented counters are tested against).
#pragma once

#include <memory>
#include <optional>

#include "cachesim/cache.hpp"
#include "interp/compiled_module.hpp"
#include "interp/cost.hpp"
#include "interp/flatten.hpp"
#include "interp/host.hpp"
#include "interp/memory.hpp"
#include "interp/value.hpp"
#include "wasm/ast.hpp"

// The computed-goto backend relies on GNU label-as-value extensions; it is
// compiled only when the toolchain supports it AND the build enables it
// (CMake option ACCTEE_THREADED_DISPATCH, ON by default). The portable
// switch backend is always compiled.
#if defined(ACCTEE_ENABLE_THREADED_DISPATCH) && \
    (defined(__GNUC__) || defined(__clang__))
#define ACCTEE_HAS_THREADED_DISPATCH 1
#else
#define ACCTEE_HAS_THREADED_DISPATCH 0
#endif

// The internal-bytecode execution backend (run_loop.inc over the lowered
// superinstruction stream, DESIGN.md §15) is compiled when the build
// enables it (CMake option ACCTEE_BYTECODE, ON by default). Its
// computed-goto variant additionally requires ACCTEE_HAS_THREADED_DISPATCH.
#if defined(ACCTEE_ENABLE_BYTECODE)
#define ACCTEE_HAS_BYTECODE 1
#else
#define ACCTEE_HAS_BYTECODE 0
#endif

// The shadow resource meter hooks (interp/shadow_meter.hpp) are compiled
// when the build enables them (CMake option ACCTEE_SHADOW_METER, ON by
// default). With the hooks compiled out the interpreter contains no meter
// code at all — the basis of the billing-neutrality gate (bit-identical
// ExecStats/ledgers across compiled-out, detached and attached).
#if defined(ACCTEE_ENABLE_SHADOW_METER)
#define ACCTEE_HAS_SHADOW_METER 1
#else
#define ACCTEE_HAS_SHADOW_METER 0
#endif

namespace acctee::obs {
class FuncProfiler;
}  // namespace acctee::obs

namespace acctee::interp {

class ShadowMeter;

/// Interpreter dispatch backend selection. All backends produce
/// bit-identical ExecStats, checkpoints and signed logs; this only selects
/// the execution technique.
enum class DispatchMode : uint8_t {
  Auto,      // bytecode when compiled in, else threaded, else switch
  Switch,    // flattened code, portable switch dispatch (reference backend)
  Threaded,  // flattened code, computed-goto dispatch (falls back to Switch)
  Bytecode,  // lowered bytecode, computed-goto dispatch (falls back down
             // the chain: bytecode-switch, then the flattened backends)
  BytecodeSwitch,  // lowered bytecode, switch dispatch (falls back to Switch)
};

class Instance {
 public:
  struct Options {
    Platform platform = Platform::Wasm;
    /// Cost parameters; defaults are derived from `platform`.
    std::optional<CostConfig> cost;
    /// Simulate the cache hierarchy behind loads/stores. Disabling makes
    /// memory accesses cost only their base cycles (used by unit tests that
    /// assert exact cycle counts).
    bool cache_model = true;
    cachesim::Hierarchy::Config cache_config;
    /// Abort execution after this many instructions (resource limiting —
    /// the sandbox must be able to stop runaway workloads).
    uint64_t max_instructions = UINT64_MAX;
    /// Maximum call depth.
    uint32_t max_call_depth = 10000;
    /// Dispatch backend for the hot loop. Every backend produces
    /// bit-identical ExecStats; this only selects the execution technique.
    /// Auto prefers the bytecode backend when compiled in (ACCTEE_BYTECODE)
    /// and the module was lowered, then computed-goto, then switch.
    DispatchMode dispatch = DispatchMode::Auto;
    /// Charge accounting one instruction at a time instead of one basic
    /// block at a time. Slower; kept as the determinism oracle the batched
    /// path is tested against (and as a debugging aid).
    bool per_instruction_accounting = false;
    /// Optional per-function attribution sink (obs/profile.hpp). Non-null
    /// selects the *profiled* run-loop instantiation, which calls
    /// profiler->on_block() on every basic-block entry; null (the default)
    /// runs the unprofiled instantiation — the hot loop pays zero extra
    /// work, not even a branch. Profiling never alters ExecStats.
    obs::FuncProfiler* profiler = nullptr;
  };

  /// True iff the computed-goto backend was compiled into this binary.
  static constexpr bool threaded_dispatch_available() {
    return ACCTEE_HAS_THREADED_DISPATCH != 0;
  }

  /// True iff the bytecode execution backend was compiled into this binary
  /// (lowering itself always runs; see CompiledModule::has_lowering()).
  static constexpr bool bytecode_available() {
    return ACCTEE_HAS_BYTECODE != 0;
  }

  /// True iff the shadow-meter hooks were compiled into this binary
  /// (CMake option ACCTEE_SHADOW_METER). With the hooks compiled out,
  /// set_shadow_meter() is accepted but the meter observes nothing.
  static constexpr bool shadow_meter_available() {
    return ACCTEE_HAS_SHADOW_METER != 0;
  }

  /// Attaches (or, with nullptr, detaches) an untrusted shadow resource
  /// meter. The meter is an observer: hooks in the host-call, memory-access
  /// and memory-growth paths report to it, and it never writes ExecStats,
  /// the counter global, checkpoints or any other billed state. Attaching
  /// seeds the meter's grow baseline with the current memory size so the
  /// instance's initial pages are not counted as churn. reset() detaches.
  void set_shadow_meter(ShadowMeter* meter);

  /// Checkpoint hook: called from inside the execution loop every
  /// `interval` executed instructions (paper §3.3 — the accounting enclave
  /// emits periodic resource logs during long executions). The handler may
  /// read stats() and exported globals but must not re-enter invoke().
  using CheckpointHandler = std::function<void(Instance&)>;
  void set_checkpoint(uint64_t interval, CheckpointHandler handler);

  /// Instantiates a shared compiled module: allocates memory/table/globals,
  /// applies data/elem segments, links imports, and runs the start function.
  /// The compiled artifact is borrowed read-only — any number of instances
  /// (including on other threads) may share one CompiledModulePtr. Throws
  /// LinkError on unresolved imports, TrapError if the start traps.
  Instance(CompiledModulePtr compiled, ImportMap imports, Options options);
  Instance(CompiledModulePtr compiled, ImportMap imports = {})
      : Instance(std::move(compiled), std::move(imports), Options{}) {}

  /// Legacy by-value path: compiles privately (without validating — callers
  /// of this constructor historically validate first) and instantiates. Each
  /// call re-flattens the module; prefer compile() + the shared constructor
  /// when the same module is instantiated more than once.
  Instance(wasm::Module module, ImportMap imports, Options options);
  Instance(wasm::Module module, ImportMap imports = {})
      : Instance(std::move(module), std::move(imports), Options{}) {}

  /// Restores the instance to its exact post-construction state so it can
  /// be reused for another request instead of being re-instantiated (the
  /// sharded gateway's per-worker freelists, DESIGN.md §16): linear memory
  /// back to its initial pages with data segments re-applied, globals and
  /// table re-initialised, operand stack and frames cleared (capacity
  /// kept — that is the speedup), simulated caches cold, ExecStats zeroed,
  /// and any checkpoint handler detached; the start function, if present,
  /// re-runs just as construction ran it. A reset instance produces
  /// bit-identical ExecStats, checkpoints and signed logs to a freshly
  /// constructed one (tested in tests/interp_test.cpp and
  /// tests/faas_test.cpp). Imports stay bound — the host channel object
  /// must be reset by the caller for the next request.
  void reset();

  /// Calls an exported function. Throws LinkError on unknown export or
  /// argument mismatch, TrapError if execution traps.
  Values invoke(std::string_view export_name, const Values& args = {});

  /// Calls a function by index-space index.
  Values invoke_index(uint32_t func_index, const Values& args);

  /// Reads an exported global (e.g. AccTEE's "__acctee_counter").
  TypedValue read_global(std::string_view export_name) const;
  TypedValue read_global_index(uint32_t global_index) const;

  LinearMemory* memory() { return memory_ ? memory_.get() : nullptr; }
  const ExecStats& stats() const { return stats_; }
  ExecStats& stats() { return stats_; }
  const wasm::Module& module() const { return compiled_->module(); }
  /// The shared immutable artifact this instance executes.
  const CompiledModulePtr& compiled() const { return compiled_; }

  /// Flushes simulated caches (between benchmark configurations).
  void flush_cache() { cache_.flush(); }

 private:
  struct Frame {
    uint32_t func = 0;          // defined-function index
    uint32_t pc = 0;
    uint32_t locals_base = 0;   // index into stack_
    uint32_t operand_base = 0;
  };

  void run(size_t stop_depth);
  // Dispatch backends: identical semantics, different dispatch technique
  // and/or code representation. The shared body lives in
  // interp/run_loop.inc, instantiated per (code representation × dispatch
  // technique × profiling) so the unprofiled loops carry no profiling code
  // at all and the flattened loops carry no bytecode code at all.
  void run_switch(size_t stop_depth);
  void run_switch_profiled(size_t stop_depth);
#if ACCTEE_HAS_THREADED_DISPATCH
  void run_threaded(size_t stop_depth);
  void run_threaded_profiled(size_t stop_depth);
#endif
#if ACCTEE_HAS_BYTECODE
  void run_bc_switch(size_t stop_depth);
  void run_bc_switch_profiled(size_t stop_depth);
#if ACCTEE_HAS_THREADED_DISPATCH
  void run_bc_threaded(size_t stop_depth);
  void run_bc_threaded_profiled(size_t stop_depth);
#endif
#endif
  void enter_frame(uint32_t defined_index);
  void call_host(uint32_t import_index);
  void do_branch(Frame& frame, uint32_t target_pc, uint32_t unwind,
                 uint8_t arity);
  void charge_memory(uint64_t effective_addr, uint32_t size, bool is_write);
  void note_memory_growth();
  void account_instruction(const FlatOp& op);
  // Per-instruction accounting for serial-mode blocks (checkpoint or
  // instruction-limit crossings, or per_instruction_accounting).
  void serial_account(const FlatOp& op) {
    if (op.synthetic) return;
    account_instruction(op);
    if (stats_.instructions > options_.max_instructions) {
      throw TrapError("instruction limit exceeded");
    }
  }
  // Trap un-charge: removes the pre-charged, never-executed suffix of the
  // current block so a mid-block trap observes exactly the serial stats.
  // `bytecode` says which representation fr.pc indexes: the bytecode
  // backends derive the first never-executed flat pc from the current
  // instruction's flat_end (fusions only trap in their last constituent —
  // the non-trapping-constituents rule in bytecode.def).
  void uncharge_block_suffix(bool bytecode) noexcept;

  // -- operand stack helpers --
  void push_raw(uint64_t v) { stack_.push_back(v); }
  uint64_t pop_raw() {
    uint64_t v = stack_.back();
    stack_.pop_back();
    return v;
  }

  // -- immutable, shared across instances --
  const wasm::Module& mod() const { return compiled_->module(); }
  const std::vector<FlatFunc>& flat() const { return compiled_->flat(); }
  const std::vector<BcFunc>& lowered() const { return compiled_->lowered(); }

  CompiledModulePtr compiled_;
  ImportMap imports_;
  Options options_;
  CostConfig cost_;
  // -- mutable per-instance state --
  std::unique_ptr<LinearMemory> memory_;
  std::vector<uint64_t> globals_;
  std::vector<int64_t> table_;  // function indices; -1 = null entry
  std::vector<uint64_t> stack_;
  std::vector<Frame> frames_;
  cachesim::Hierarchy cache_;
  ExecStats stats_;
  // True while run() executes a block whose accounting was charged on
  // entry; charged_end_pc_ is that block's end. Consulted only on the trap
  // path (uncharge_block_suffix).
  bool block_charged_ = false;
  uint32_t charged_end_pc_ = 0;
  double epc_fault_accum_ = 0;  // deterministic fractional paging model
  uint64_t integral_mark_ = 0;  // instruction count at last memory resize
  uint64_t checkpoint_interval_ = 0;
  uint64_t next_checkpoint_ = UINT64_MAX;
  CheckpointHandler checkpoint_;
  // Untrusted observer (never billed state); null = no metering.
  ShadowMeter* meter_ = nullptr;
};

}  // namespace acctee::interp
