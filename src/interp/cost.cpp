#include "interp/cost.hpp"

namespace acctee::interp {

const char* to_string(Platform p) {
  switch (p) {
    case Platform::Native: return "native";
    case Platform::Wasm: return "WASM";
    case Platform::WasmSgxSim: return "WASM-SGX SIM";
    case Platform::WasmSgxHw: return "WASM-SGX HW";
  }
  return "?";
}

CostConfig CostConfig::for_platform(Platform p) {
  CostConfig c;
  switch (p) {
    case Platform::Native:
      c.bounds_check_cycles = 0;
      c.call_overhead_cycles = 0;
      c.host_call_cycles = 50;
      break;
    case Platform::Wasm:
    case Platform::WasmSgxSim:
      // SGX-LKL in simulation mode adds no measurable overhead (§5.1);
      // host calls get slightly more expensive through the LKL layers.
      c.host_call_cycles = p == Platform::WasmSgxSim ? 600 : 150;
      break;
    case Platform::WasmSgxHw:
      c.mee_cycles_per_llc_miss = 30;
      c.epc_limit_bytes = 93ull * 1024 * 1024;  // usable EPC (§2.2)
      c.epc_fault_cycles = 40000;               // page-in + page-out
      c.enclave_base_footprint = 48ull * 1024 * 1024;  // SGX-LKL + V8 + heap
      c.host_call_cycles = 8000;                // enclave transition (OCALL)
      break;
  }
  return c;
}

}  // namespace acctee::interp
