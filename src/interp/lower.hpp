// Lowering — stage three of the pipeline (DESIGN.md §15): translates the
// verified flattened form into the internal bytecode (interp/bytecode.hpp).
//
// Lowering is deterministic: the same FlatFunc and LowerOptions always
// produce the same BcFunc, byte for byte. That determinism is what makes
// the verify-then-bind argument work — the accounting enclave re-derives
// the canonical lowering from the flattened code it statically verified and
// checks the executing artifact (via lowering_digest) against it, so a
// tampered bytecode stream can never be billed as the verified program.
#pragma once

#include <vector>

#include "crypto/sha256.hpp"
#include "interp/bytecode.hpp"
#include "interp/flatten.hpp"

namespace acctee::interp {

struct LowerOptions {
  /// Produce lowered code at compile() time. Off: the compiled module
  /// carries no bytecode and bytecode dispatch modes fall back to the
  /// flattened backends.
  bool enable = true;
  /// Fuse superinstructions (bytecode.def). Off: 1:1 lowering plus
  /// EnterBlock only — the ablation baseline for the fusion win.
  bool fuse = true;

  friend bool operator==(const LowerOptions&, const LowerOptions&) = default;
};

/// Lowers one flattened function. Every basic block becomes an EnterBlock
/// instruction (carrying the block's batched accounting charge inline)
/// followed by the block's ops, greedily fused per bytecode.def when
/// `options.fuse` is set. Branch targets and br_tables are remapped to
/// bytecode pcs (branches land on the target block's EnterBlock).
BcFunc lower_function(const FlatFunc& flat, const LowerOptions& options);

/// Lowers every defined function of a module.
std::vector<BcFunc> lower_module(const std::vector<FlatFunc>& flat,
                                 const LowerOptions& options);

/// Canonical digest binding a lowered module to the flattened form it was
/// derived from (domain-separated SHA-256 over a deterministic
/// serialization of both representations and the lowering options).
/// Recorded by CompiledModule and checked in the AE's verify_counters path.
crypto::Digest lowering_digest(const std::vector<FlatFunc>& flat,
                               const std::vector<BcFunc>& lowered,
                               const LowerOptions& options);

}  // namespace acctee::interp
