#include "obs/watchdog.hpp"

#include <algorithm>
#include <cstdio>

namespace acctee::obs {

namespace {

std::string format_rate(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

std::string format_ms(double seconds) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", seconds * 1e3);
  return buf;
}

}  // namespace

Watchdog::Watchdog(Registry& registry, WatchdogConfig config,
                   BillingGapProbe billing_probe)
    : registry_(registry),
      config_(config),
      billing_probe_(std::move(billing_probe)),
      ticks_metric_(registry.counter("acctee_watchdog_ticks_total")),
      queue_alerts_(registry.counter("acctee_watchdog_alerts_total",
                                     "rule=\"queue_saturation\"")),
      shed_alerts_(registry.counter("acctee_watchdog_alerts_total",
                                    "rule=\"shed_rate\"")),
      p99_alerts_(registry.counter("acctee_watchdog_alerts_total",
                                   "rule=\"p99_regression\"")),
      gap_alerts_(registry.counter("acctee_watchdog_alerts_total",
                                   "rule=\"billing_gap\"")),
      cost_gap_alerts_(registry.counter("acctee_watchdog_alerts_total",
                                        "rule=\"cost_gap\"")),
      billing_gap_gauge_(registry.gauge("acctee_watchdog_billing_gap")),
      cost_gap_gauge_(
          registry.gauge("acctee_watchdog_cost_gap_worst_permille")) {
  registry.set_help("acctee_watchdog_ticks_total",
                    "Watchdog rule-evaluation passes.");
  registry.set_help("acctee_watchdog_alerts_total",
                    "SLO/billing-gap alerts raised, by rule.");
  registry.set_help("acctee_watchdog_billing_gap",
                    "1 while the online metrics<->ledger probe disagrees.");
  registry.set_help(
      "acctee_watchdog_cost_gap_worst_permille",
      "Worst cumulative true/billed cost ratio (x1000) seen last tick.");
}

Watchdog::~Watchdog() { stop(); }

void Watchdog::raise(const std::string& rule, std::string detail,
                     uint64_t tick) {
  std::lock_guard<std::mutex> lock(mutex_);
  alerts_.push_back({rule, std::move(detail), tick});
}

void Watchdog::rule_queue_saturation(uint64_t tick) {
  for (const GaugeSample& g :
       registry_.gauge_samples("acctee_gateway_queue_depth")) {
    // Skip the *_peak series: saturation is about current depth.
    if (g.name != "acctee_gateway_queue_depth") continue;
    if (g.value >= config_.queue_depth_threshold) {
      queue_alerts_.inc();
      raise("queue_saturation",
            "{" + g.labels + "} depth " + std::to_string(g.value) + " >= " +
                std::to_string(config_.queue_depth_threshold),
            tick);
    }
  }
}

void Watchdog::rule_shed_rate(uint64_t tick) {
  uint64_t requests = 0;
  uint64_t shed = 0;
  for (const CounterSample& c :
       registry_.counter_samples("acctee_gateway_shard_requests_total")) {
    requests += c.value;
  }
  for (const CounterSample& c :
       registry_.counter_samples("acctee_gateway_shard_shed_total")) {
    shed += c.value;
  }
  const uint64_t req_delta = requests - last_requests_;
  const uint64_t shed_delta = shed - last_shed_;
  last_requests_ = requests;
  last_shed_ = shed;
  const uint64_t offered = req_delta + shed_delta;
  if (offered < config_.shed_rate_min_requests) return;
  const double rate =
      static_cast<double>(shed_delta) / static_cast<double>(offered);
  if (rate > config_.shed_rate_threshold) {
    shed_alerts_.inc();
    raise("shed_rate",
          "shed " + std::to_string(shed_delta) + "/" +
              std::to_string(offered) + " this tick (rate " +
              format_rate(rate) + " > " +
              format_rate(config_.shed_rate_threshold) + ")",
          tick);
  }
}

void Watchdog::rule_p99_regression(uint64_t tick) {
  for (const HistogramSample& h :
       registry_.histogram_samples("acctee_gateway_shard_request_seconds")) {
    if (h.snapshot.count == 0) continue;
    const double p99 = h.snapshot.quantile(0.99);
    auto [it, inserted] = p99_baseline_.try_emplace(h.labels, p99);
    if (inserted) continue;  // first sight establishes the baseline
    if (it->second > 0 && p99 > it->second * config_.p99_regression_factor) {
      p99_alerts_.inc();
      raise("p99_regression",
            "{" + h.labels + "} p99 " + format_ms(p99) + "ms > " +
                format_rate(config_.p99_regression_factor) + "x baseline " +
                format_ms(it->second) + "ms",
            tick);
    }
  }
}

void Watchdog::rule_billing_gap(uint64_t tick) {
  if (!billing_probe_) return;
  BillingGapReport report = billing_probe_();
  if (!report.checked) return;
  billing_gap_gauge_.set(report.consistent ? 0 : 1);
  if (!report.consistent) {
    gap_alerts_.inc();
    raise("billing_gap",
          report.detail.empty() ? "metrics and ledger disagree"
                                : report.detail,
          tick);
  }
}

void Watchdog::rule_cost_gap(uint64_t tick) {
  // Pair the billed/true counters by their exact label fragment. The series
  // are created together (obs::GapMetrics::record), so an unmatched label
  // set simply has not been billed anything yet — treated as billed 0.
  std::map<std::string, uint64_t> billed;
  for (const CounterSample& c :
       registry_.counter_samples("acctee_gap_billed_total")) {
    if (c.name != "acctee_gap_billed_total") continue;
    billed[c.labels] = c.value;
  }
  int64_t worst_permille = 0;
  for (const CounterSample& c :
       registry_.counter_samples("acctee_gap_true_total")) {
    if (c.name != "acctee_gap_true_total") continue;
    if (c.value < config_.cost_gap_min_true_cost) continue;
    auto it = billed.find(c.labels);
    const uint64_t b = it == billed.end() ? 0 : it->second;
    const double ratio =
        static_cast<double>(c.value) / static_cast<double>(b == 0 ? 1 : b);
    worst_permille = std::max(worst_permille, static_cast<int64_t>(ratio * 1000));
    bool& latched = cost_gap_latched_[c.labels];
    if (ratio > config_.cost_gap_ratio_threshold) {
      if (!latched) {
        latched = true;
        cost_gap_alerts_.inc();
        raise("cost_gap",
              "{" + c.labels + "} true " + std::to_string(c.value) +
                  " vs billed " + std::to_string(b) + " (ratio " +
                  format_rate(ratio) + " > " +
                  format_rate(config_.cost_gap_ratio_threshold) + ")",
              tick);
      }
    } else {
      latched = false;
    }
  }
  cost_gap_gauge_.set(worst_permille);
}

void Watchdog::evaluate_once() {
  const uint64_t tick = ticks_.fetch_add(1, std::memory_order_relaxed) + 1;
  ticks_metric_.inc();
  rule_queue_saturation(tick);
  rule_shed_rate(tick);
  rule_p99_regression(tick);
  rule_billing_gap(tick);
  rule_cost_gap(tick);
}

void Watchdog::start() {
  {
    std::lock_guard<std::mutex> lock(wake_mutex_);
    if (running_) return;
    running_ = true;
  }
  thread_ = std::thread([this] {
    std::unique_lock<std::mutex> lock(wake_mutex_);
    while (running_) {
      lock.unlock();
      evaluate_once();
      lock.lock();
      wake_.wait_for(lock, config_.interval, [this] { return !running_; });
    }
  });
}

void Watchdog::stop() {
  {
    std::lock_guard<std::mutex> lock(wake_mutex_);
    if (!running_) return;
    running_ = false;
  }
  wake_.notify_all();
  if (thread_.joinable()) thread_.join();
}

std::vector<WatchdogAlert> Watchdog::alerts() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return alerts_;
}

std::string Watchdog::render_dashboard() const {
  std::string out;
  out += "acctee top — tick " + std::to_string(ticks()) + "\n";

  uint64_t requests = 0;
  uint64_t shed = 0;
  uint64_t quota = 0;
  for (const CounterSample& c :
       registry_.counter_samples("acctee_gateway_shard_requests_total")) {
    requests += c.value;
  }
  for (const CounterSample& c :
       registry_.counter_samples("acctee_gateway_shard_shed_total")) {
    shed += c.value;
  }
  for (const CounterSample& c : registry_.counter_samples(
           "acctee_gateway_shard_quota_rejected_total")) {
    quota += c.value;
  }
  out += "  requests " + std::to_string(requests) + "  shed " +
         std::to_string(shed) + "  quota_rejected " + std::to_string(quota) +
         "\n";

  uint64_t logs = 0;
  uint64_t weighted = 0;
  for (const CounterSample& c :
       registry_.counter_samples("acctee_billing_logs_total")) {
    logs += c.value;
  }
  for (const CounterSample& c : registry_.counter_samples(
           "acctee_billing_weighted_instructions_total")) {
    weighted += c.value;
  }
  out += "  billed_logs " + std::to_string(logs) +
         "  weighted_instructions " + std::to_string(weighted) + "\n";

  out += "  queues:";
  bool any_queue = false;
  for (const GaugeSample& g :
       registry_.gauge_samples("acctee_gateway_queue_depth")) {
    if (g.name != "acctee_gateway_queue_depth") continue;
    out += " {" + g.labels + "}=" + std::to_string(g.value);
    any_queue = true;
  }
  if (!any_queue) out += " (none)";
  out += "\n";

  out += "  shard p99 (ms):";
  bool any_p99 = false;
  for (const HistogramSample& h :
       registry_.histogram_samples("acctee_gateway_shard_request_seconds")) {
    if (h.snapshot.count == 0) continue;
    out += " {" + h.labels + "}=" + format_ms(h.snapshot.quantile(0.99));
    any_p99 = true;
  }
  if (!any_p99) out += " (no samples)";
  out += "\n";

  const int64_t gap = billing_gap_gauge_.value();
  out += std::string("  billing_gap: ") + (gap != 0 ? "DETECTED" : "none") +
         "\n";
  out += "  cost_gap worst true/billed: " +
         format_rate(static_cast<double>(cost_gap_gauge_.value()) / 1000.0) +
         "\n";

  std::vector<WatchdogAlert> alerts = this->alerts();
  out += "  alerts (" + std::to_string(alerts.size()) + "):\n";
  const size_t shown = alerts.size() > 8 ? alerts.size() - 8 : 0;
  for (size_t i = shown; i < alerts.size(); ++i) {
    out += "    [" + std::to_string(alerts[i].tick) + "] " + alerts[i].rule +
           ": " + alerts[i].detail + "\n";
  }
  return out;
}

}  // namespace acctee::obs
