#include "obs/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <map>

#include "obs/metrics.hpp"  // shard_index(), json_escape()

namespace acctee::obs {

namespace {

// Per-thread stack of open span ids: implicit parenting. Spans must finish
// on the thread that opened them (they are scope guards, so they do).
thread_local std::vector<uint64_t> t_open_spans;

}  // namespace

Tracer::Tracer(size_t capacity)
    : epoch_(std::chrono::steady_clock::now()),
      capacity_(capacity == 0 ? 1 : capacity) {}

Tracer& Tracer::global() {
  static Tracer tracer;
  return tracer;
}

Tracer::Span& Tracer::Span::operator=(Span&& other) noexcept {
  finish();
  tracer_ = other.tracer_;
  id_ = other.id_;
  parent_ = other.parent_;
  name_ = other.name_;
  start_ = other.start_;
  other.tracer_ = nullptr;
  return *this;
}

void Tracer::Span::finish() {
  if (tracer_ == nullptr) return;
  Tracer* tracer = tracer_;
  tracer_ = nullptr;
  if (!t_open_spans.empty() && t_open_spans.back() == id_) {
    t_open_spans.pop_back();
  }
  tracer->record(*this, std::chrono::steady_clock::now());
}

Tracer::Span Tracer::span(const char* name) {
  Span span;
  if (!enabled()) return span;
  span.tracer_ = this;
  span.id_ = next_id_.fetch_add(1, std::memory_order_relaxed);
  span.parent_ = t_open_spans.empty() ? 0 : t_open_spans.back();
  span.name_ = name;
  span.start_ = std::chrono::steady_clock::now();
  t_open_spans.push_back(span.id_);
  return span;
}

void Tracer::record(const Span& span,
                    std::chrono::steady_clock::time_point end) {
  SpanRecord rec;
  rec.id = span.id_;
  rec.parent = span.parent_;
  rec.name = span.name_;
  rec.start_ns = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(span.start_ -
                                                           epoch_)
          .count());
  rec.duration_ns = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(end - span.start_)
          .count());
  rec.shard = shard_index();

  std::lock_guard<std::mutex> lock(mutex_);
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(rec));
  } else {
    ring_[head_] = std::move(rec);
    head_ = (head_ + 1) % capacity_;
    ++dropped_;
  }
}

std::vector<SpanRecord> Tracer::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<SpanRecord> out;
  out.reserve(ring_.size());
  // head_ is the oldest entry once the ring wrapped.
  for (size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(head_ + i) % ring_.size()]);
  }
  return out;
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  ring_.clear();
  head_ = 0;
  dropped_ = 0;
}

uint64_t Tracer::dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dropped_;
}

std::string Tracer::render_text() const {
  std::vector<SpanRecord> spans = snapshot();
  std::map<uint64_t, std::vector<size_t>> children;
  std::map<uint64_t, size_t> by_id;
  for (size_t i = 0; i < spans.size(); ++i) by_id[spans[i].id] = i;
  std::vector<size_t> roots;
  for (size_t i = 0; i < spans.size(); ++i) {
    if (spans[i].parent != 0 && by_id.count(spans[i].parent)) {
      children[spans[i].parent].push_back(i);
    } else {
      roots.push_back(i);
    }
  }
  std::string out;
  auto print = [&](auto&& self, size_t index, int depth) -> void {
    const SpanRecord& s = spans[index];
    char line[192];
    std::snprintf(line, sizeof(line), "%*s%-*s %10.3f ms  @%.3f ms\n",
                  depth * 2, "", 28 - depth * 2, s.name.c_str(),
                  static_cast<double>(s.duration_ns) / 1e6,
                  static_cast<double>(s.start_ns) / 1e6);
    out += line;
    for (size_t child : children[s.id]) self(self, child, depth + 1);
  };
  for (size_t root : roots) print(print, root, 0);
  return out;
}

std::string Tracer::render_chrome_json() const {
  std::vector<SpanRecord> spans = snapshot();
  std::string out = "{\"traceEvents\": [";
  char buf[64];
  for (size_t i = 0; i < spans.size(); ++i) {
    const SpanRecord& s = spans[i];
    out += i == 0 ? "\n  " : ",\n  ";
    // ts/dur are microseconds (doubles); "X" = complete event.
    std::snprintf(buf, sizeof(buf), "%.3f", static_cast<double>(s.start_ns) / 1e3);
    out += "{\"name\": \"" + json_escape(s.name) +
           "\", \"cat\": \"acctee\", \"ph\": \"X\""
           ", \"ts\": " + buf;
    std::snprintf(buf, sizeof(buf), "%.3f",
                  static_cast<double>(s.duration_ns) / 1e3);
    out += std::string(", \"dur\": ") + buf + ", \"pid\": 0, \"tid\": " +
           std::to_string(s.shard) + ", \"args\": {\"id\": " +
           std::to_string(s.id) + ", \"parent\": " + std::to_string(s.parent) +
           "}}";
  }
  out += "\n], \"displayTimeUnit\": \"ms\"}\n";
  return out;
}

std::string Tracer::render_json() const {
  std::vector<SpanRecord> spans = snapshot();
  std::string out = "{\n  \"spans\": [";
  for (size_t i = 0; i < spans.size(); ++i) {
    const SpanRecord& s = spans[i];
    out += i == 0 ? "\n    " : ",\n    ";
    out += "{\"id\": " + std::to_string(s.id) +
           ", \"parent\": " + std::to_string(s.parent) + ", \"name\": \"" +
           json_escape(s.name) +
           "\", \"start_ns\": " + std::to_string(s.start_ns) +
           ", \"duration_ns\": " + std::to_string(s.duration_ns) + "}";
  }
  out += "\n  ]\n}\n";
  return out;
}

}  // namespace acctee::obs
