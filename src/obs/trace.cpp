#include "obs/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <map>

#include "obs/metrics.hpp"  // shard_index(), json_escape(), Registry

namespace acctee::obs {

namespace {

// Per-thread stack of open span ids: implicit parenting. Spans must finish
// on the thread that opened them (they are scope guards, so they do).
thread_local std::vector<uint64_t> t_open_spans;

// Innermost installed trace context for the calling thread (TraceScope).
thread_local const TraceContext* t_trace_context = nullptr;

// splitmix64 finalizer: cheap, well-distributed 64-bit mix.
uint64_t mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

uint64_t fnv1a64(const std::string& s) {
  uint64_t h = 1469598103934665603ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

// True when the calling thread's context forbids recording: a context is
// installed and its admission-time sampling decision was "out".
bool sampled_out() {
  return t_trace_context != nullptr && !t_trace_context->sampled;
}

}  // namespace

TraceContext make_trace_context(const std::string& tenant, uint64_t sequence) {
  TraceContext ctx;
  const uint64_t tenant_hash = fnv1a64(tenant);
  ctx.trace_hi = mix64(tenant_hash ^ mix64(sequence));
  ctx.trace_lo = mix64(sequence ^ (tenant_hash * 0x2545f4914f6cdd1dULL));
  if ((ctx.trace_hi | ctx.trace_lo) == 0) ctx.trace_lo = 1;
  ctx.tenant = tenant;
  return ctx;
}

std::string trace_id_hex(uint64_t hi, uint64_t lo) {
  char buf[33];
  std::snprintf(buf, sizeof(buf), "%016llx%016llx",
                static_cast<unsigned long long>(hi),
                static_cast<unsigned long long>(lo));
  return std::string(buf);
}

bool parse_trace_id_hex(const std::string& hex, uint64_t* hi, uint64_t* lo) {
  if (hex.size() != 32) return false;
  uint64_t parts[2] = {0, 0};
  for (size_t i = 0; i < 32; ++i) {
    const char c = hex[i];
    uint64_t nibble;
    if (c >= '0' && c <= '9') {
      nibble = static_cast<uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      nibble = static_cast<uint64_t>(c - 'a' + 10);
    } else if (c >= 'A' && c <= 'F') {
      nibble = static_cast<uint64_t>(c - 'A' + 10);
    } else {
      return false;
    }
    parts[i / 16] = (parts[i / 16] << 4) | nibble;
  }
  *hi = parts[0];
  *lo = parts[1];
  return true;
}

const TraceContext* current_trace_context() { return t_trace_context; }

TraceScope::TraceScope(const TraceContext& context)
    : previous_(t_trace_context) {
  t_trace_context = &context;
}

TraceScope::~TraceScope() { t_trace_context = previous_; }

Tracer::Tracer(size_t capacity)
    : epoch_(std::chrono::steady_clock::now()),
      capacity_(capacity == 0 ? 1 : capacity),
      dropped_metric_(
          &Registry::global().counter("acctee_trace_dropped_spans_total")) {}

Tracer& Tracer::global() {
  static Tracer tracer;
  return tracer;
}

bool Tracer::should_sample(uint64_t trace_hi, uint64_t trace_lo) const {
  if (!enabled()) return false;
  const uint32_t rate = sampling_per_myriad();
  if (rate >= 10000) return true;
  if (rate == 0) return false;
  // Deterministic per-id verdict; mix again so sampling is independent of
  // any structure in how ids were allocated.
  return mix64(trace_hi ^ (trace_lo * 0x9e3779b97f4a7c15ULL)) % 10000 < rate;
}

Tracer::Span& Tracer::Span::operator=(Span&& other) noexcept {
  finish();
  tracer_ = other.tracer_;
  id_ = other.id_;
  parent_ = other.parent_;
  name_ = other.name_;
  start_ = other.start_;
  other.tracer_ = nullptr;
  return *this;
}

void Tracer::Span::finish() {
  if (tracer_ == nullptr) return;
  Tracer* tracer = tracer_;
  tracer_ = nullptr;
  if (!t_open_spans.empty() && t_open_spans.back() == id_) {
    t_open_spans.pop_back();
  }
  tracer->record(*this, std::chrono::steady_clock::now());
}

Tracer::Span Tracer::span(const char* name) {
  Span span;
  if (!enabled() || sampled_out()) return span;
  span.tracer_ = this;
  span.id_ = next_id_.fetch_add(1, std::memory_order_relaxed);
  if (!t_open_spans.empty()) {
    span.parent_ = t_open_spans.back();
  } else if (t_trace_context != nullptr) {
    span.parent_ = t_trace_context->parent_span;
  }
  span.name_ = name;
  span.start_ = std::chrono::steady_clock::now();
  t_open_spans.push_back(span.id_);
  return span;
}

void Tracer::emit(const char* name,
                  std::chrono::steady_clock::time_point start,
                  std::chrono::steady_clock::time_point end) {
  if (!enabled() || sampled_out()) return;
  SpanRecord rec;
  rec.id = next_id_.fetch_add(1, std::memory_order_relaxed);
  if (!t_open_spans.empty()) {
    rec.parent = t_open_spans.back();
  } else if (t_trace_context != nullptr) {
    rec.parent = t_trace_context->parent_span;
  }
  rec.name = name;
  if (end < start) end = start;
  rec.start_ns = start < epoch_
                     ? 0
                     : static_cast<uint64_t>(
                           std::chrono::duration_cast<std::chrono::nanoseconds>(
                               start - epoch_)
                               .count());
  rec.duration_ns = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(end - start)
          .count());
  rec.shard = shard_index();
  if (t_trace_context != nullptr) {
    rec.trace_hi = t_trace_context->trace_hi;
    rec.trace_lo = t_trace_context->trace_lo;
    rec.tenant = t_trace_context->tenant;
  }
  push(std::move(rec));
}

void Tracer::record(const Span& span,
                    std::chrono::steady_clock::time_point end) {
  SpanRecord rec;
  rec.id = span.id_;
  rec.parent = span.parent_;
  rec.name = span.name_;
  rec.start_ns = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(span.start_ -
                                                           epoch_)
          .count());
  rec.duration_ns = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(end - span.start_)
          .count());
  rec.shard = shard_index();
  if (t_trace_context != nullptr) {
    rec.trace_hi = t_trace_context->trace_hi;
    rec.trace_lo = t_trace_context->trace_lo;
    rec.tenant = t_trace_context->tenant;
  }
  push(std::move(rec));
}

void Tracer::push(SpanRecord rec) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(rec));
  } else {
    ring_[head_] = std::move(rec);
    head_ = (head_ + 1) % capacity_;
    ++dropped_;
    dropped_metric_->inc();
  }
}

std::vector<SpanRecord> Tracer::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<SpanRecord> out;
  out.reserve(ring_.size());
  // head_ is the oldest entry once the ring wrapped.
  for (size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(head_ + i) % ring_.size()]);
  }
  return out;
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  ring_.clear();
  head_ = 0;
  dropped_ = 0;
}

uint64_t Tracer::dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dropped_;
}

std::string Tracer::render_text() const {
  std::vector<SpanRecord> spans = snapshot();
  std::map<uint64_t, std::vector<size_t>> children;
  std::map<uint64_t, size_t> by_id;
  for (size_t i = 0; i < spans.size(); ++i) by_id[spans[i].id] = i;
  std::vector<size_t> roots;
  for (size_t i = 0; i < spans.size(); ++i) {
    if (spans[i].parent != 0 && by_id.count(spans[i].parent)) {
      children[spans[i].parent].push_back(i);
    } else {
      roots.push_back(i);
    }
  }
  std::string out;
  auto print = [&](auto&& self, size_t index, int depth) -> void {
    const SpanRecord& s = spans[index];
    char line[192];
    std::snprintf(line, sizeof(line), "%*s%-*s %10.3f ms  @%.3f ms\n",
                  depth * 2, "", 28 - depth * 2, s.name.c_str(),
                  static_cast<double>(s.duration_ns) / 1e6,
                  static_cast<double>(s.start_ns) / 1e6);
    out += line;
    for (size_t child : children[s.id]) self(self, child, depth + 1);
  };
  for (size_t root : roots) print(print, root, 0);
  return out;
}

std::string Tracer::render_chrome_json() const {
  std::vector<SpanRecord> spans = snapshot();
  std::string out = "{\"traceEvents\": [";
  char buf[64];
  for (size_t i = 0; i < spans.size(); ++i) {
    const SpanRecord& s = spans[i];
    out += i == 0 ? "\n  " : ",\n  ";
    // ts/dur are microseconds (doubles); "X" = complete event.
    std::snprintf(buf, sizeof(buf), "%.3f", static_cast<double>(s.start_ns) / 1e3);
    out += "{\"name\": \"" + json_escape(s.name) +
           "\", \"cat\": \"acctee\", \"ph\": \"X\""
           ", \"ts\": " + buf;
    std::snprintf(buf, sizeof(buf), "%.3f",
                  static_cast<double>(s.duration_ns) / 1e3);
    out += std::string(", \"dur\": ") + buf + ", \"pid\": 0, \"tid\": " +
           std::to_string(s.shard) + ", \"args\": {\"id\": " +
           std::to_string(s.id) + ", \"parent\": " + std::to_string(s.parent);
    if ((s.trace_hi | s.trace_lo) != 0) {
      out += ", \"trace_id\": \"" + trace_id_hex(s.trace_hi, s.trace_lo) +
             "\", \"tenant\": \"" + json_escape(s.tenant) + "\"";
    }
    out += "}}";
  }
  out += "\n], \"displayTimeUnit\": \"ms\"}\n";
  return out;
}

std::string Tracer::render_json() const {
  std::vector<SpanRecord> spans = snapshot();
  std::string out = "{\n  \"spans\": [";
  for (size_t i = 0; i < spans.size(); ++i) {
    const SpanRecord& s = spans[i];
    out += i == 0 ? "\n    " : ",\n    ";
    out += "{\"id\": " + std::to_string(s.id) +
           ", \"parent\": " + std::to_string(s.parent) + ", \"name\": \"" +
           json_escape(s.name) +
           "\", \"start_ns\": " + std::to_string(s.start_ns) +
           ", \"duration_ns\": " + std::to_string(s.duration_ns);
    if ((s.trace_hi | s.trace_lo) != 0) {
      out += ", \"trace_id\": \"" + trace_id_hex(s.trace_hi, s.trace_lo) +
             "\", \"tenant\": \"" + json_escape(s.tenant) + "\"";
    }
    out += "}";
  }
  out += "\n  ]\n}\n";
  return out;
}

std::string Tracer::render_folded() const {
  std::vector<SpanRecord> spans = snapshot();
  std::map<uint64_t, size_t> by_id;
  for (size_t i = 0; i < spans.size(); ++i) by_id[spans[i].id] = i;
  // Frame names come from span()/emit() literals, but scrub anyway so the
  // folded grammar (semicolon-joined frames, space before the value) can
  // never be broken by a frame component.
  auto scrub = [](const std::string& name) {
    std::string out = name;
    for (char& c : out) {
      if (c == ';' || c == ' ' || static_cast<unsigned char>(c) < 0x20 ||
          c == 0x7f) {
        c = '_';
      }
    }
    return out;
  };
  std::map<std::string, uint64_t> folded;  // path -> summed duration_ns
  for (const SpanRecord& s : spans) {
    // Root-to-leaf path by walking parent links within the snapshot.
    std::vector<const SpanRecord*> chain;
    const SpanRecord* cur = &s;
    chain.push_back(cur);
    while (cur->parent != 0) {
      auto it = by_id.find(cur->parent);
      if (it == by_id.end()) break;  // parent already evicted from the ring
      cur = &spans[it->second];
      chain.push_back(cur);
    }
    std::string path = s.tenant.empty() ? "untraced" : scrub(s.tenant);
    for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
      path += ';';
      path += scrub((*it)->name);
    }
    folded[path] += s.duration_ns;
  }
  std::string out;
  for (const auto& [path, total] : folded) {
    out += path;
    out += ' ';
    out += std::to_string(total);
    out += '\n';
  }
  return out;
}

}  // namespace acctee::obs
