// Per-tenant billed-vs-true cost-gap metric family (DESIGN.md §18).
//
// The shadow resource meter (interp/shadow_meter.hpp) produces a per-request
// GapProfile; this class turns a stream of such profiles into scrapeable
// `acctee_gap_*` series keyed by (tenant, dimension):
//
//   acctee_gap_billed_total    counter — what the counters billed,
//   acctee_gap_true_total      counter — what the meter measured,
//   acctee_gap_ratio_permille  gauge   — 1000 × cumulative true/billed
//                                        (billed clamped to 1).
//
// Tenant names come from the request path, i.e. from the adversary, so two
// defences apply before a name ever becomes a label value:
//   * scrubbing — characters outside [A-Za-z0-9_.-] are replaced with '_'
//     and the name is truncated, so a hostile name cannot smuggle structure
//     into the exposition (escape_label_value already guards the syntax;
//     scrubbing additionally bounds the *content*);
//   * a cardinality cap — at most `max_tenants` distinct scrubbed names get
//     their own series; every later tenant folds into tenant="__other__",
//     so an attacker churning tenant names cannot grow the registry (and
//     the scrape) without bound.
//
// record() is thread-safe: a short lookup lock resolves the series handles,
// then the writes are the registry's usual lock-free adds.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"

namespace acctee::obs {

/// Tenant label folding all names beyond the cardinality cap.
inline constexpr const char* kGapOverflowTenant = "__other__";

class GapMetrics {
 public:
  struct Options {
    /// Distinct tenant labels before folding into kGapOverflowTenant.
    size_t max_tenants = 64;
    /// Scrubbed tenant names are truncated to this many characters.
    size_t max_name_length = 48;
  };

  explicit GapMetrics(Registry& registry) : GapMetrics(registry, Options{}) {}
  GapMetrics(Registry& registry, Options options);

  /// Replaces every character outside [A-Za-z0-9_.-] with '_' and truncates
  /// to `max_length`; an empty result becomes "_".
  static std::string scrub(std::string_view tenant, size_t max_length = 48);

  /// Accumulates one request's (billed, true) pair for `tenant` under
  /// `dimension` (a label this process controls, e.g. "host_cycles") and
  /// refreshes the cumulative ratio gauge.
  void record(std::string_view tenant, std::string_view dimension,
              uint64_t billed, uint64_t true_cost);

  /// Number of distinct (non-overflow) tenant labels currently exported.
  size_t tenant_count() const;

  /// Read-back of every (tenant, dimension) series, deterministic order.
  struct Series {
    std::string tenant;
    std::string dimension;
    uint64_t billed = 0;
    uint64_t true_cost = 0;
    double ratio = 0;  // cumulative true / max(billed, 1)
  };
  std::vector<Series> snapshot() const;

 private:
  struct Handles {
    Counter* billed = nullptr;
    Counter* true_cost = nullptr;
    Gauge* ratio_permille = nullptr;
  };

  Registry& registry_;
  Options options_;
  mutable std::mutex mutex_;
  std::map<std::string, bool> tenants_;  // scrubbed name -> has own series
  std::map<std::pair<std::string, std::string>, Handles> series_;
};

}  // namespace acctee::obs
