#include "obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <set>
#include <sstream>

#include "obs/trace.hpp"  // current_trace_context() for exemplars

namespace acctee::obs {

namespace {

// Relaxed add of a double stored as bit-cast uint64 (atomic<double> fetch_add
// is C++20 but spotty across toolchains; a CAS loop on a per-thread shard is
// uncontended in practice).
void add_double(std::atomic<uint64_t>& bits, double delta) {
  uint64_t old = bits.load(std::memory_order_relaxed);
  uint64_t wanted;
  do {
    wanted = std::bit_cast<uint64_t>(std::bit_cast<double>(old) + delta);
  } while (!bits.compare_exchange_weak(old, wanted,
                                       std::memory_order_relaxed));
}

std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

}  // namespace

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    const auto u = static_cast<unsigned char>(c);
    if (c == '\n') {
      out += "\\n";
    } else if (c == '\t') {
      out += "\\t";
    } else if (c == '\r') {
      out += "\\r";
    } else if (u < 0x20 || u == 0x7f) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", u);
      out += buf;
    } else {
      if (c == '"' || c == '\\') out.push_back('\\');
      out.push_back(c);
    }
  }
  return out;
}

std::string escape_label_value(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

std::string label_pair(std::string_view key, std::string_view value) {
  std::string out(key);
  out += "=\"";
  out += escape_label_value(value);
  out += '"';
  return out;
}

double HistogramSnapshot::quantile(double q) const {
  if (count == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(count);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    cumulative += counts[i];
    if (static_cast<double>(cumulative) >= rank && counts[i] > 0) {
      if (i >= bounds.size()) {
        // Open-ended bucket: report its lower bound.
        return bounds.empty() ? 0 : bounds.back();
      }
      double lower = i == 0 ? 0 : bounds[i - 1];
      double upper = bounds[i];
      double below = static_cast<double>(cumulative - counts[i]);
      double frac = (rank - below) / static_cast<double>(counts[i]);
      return lower + (upper - lower) * std::clamp(frac, 0.0, 1.0);
    }
  }
  return bounds.empty() ? 0 : bounds.back();
}

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  for (Shard& s : shards_) {
    s.counts = std::vector<std::atomic<uint64_t>>(bounds_.size() + 1);
  }
  exemplars_.resize(bounds_.size() + 1);
}

void Histogram::observe(double v) {
  size_t bucket =
      std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin();
  Shard& shard = shards_[shard_index()];
  shard.counts[bucket].fetch_add(1, std::memory_order_relaxed);
  add_double(shard.sum_bits, v);
  // Exemplar capture only for sampled requests: everyone else skips with
  // one TLS load, keeping observe() lock-free on the billing path.
  const TraceContext* ctx = current_trace_context();
  if (ctx != nullptr && ctx->sampled && ctx->valid()) {
    std::lock_guard<std::mutex> lock(exemplar_mutex_);
    exemplars_[bucket] = Exemplar{v, ctx->trace_hi, ctx->trace_lo, true};
  }
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot snap;
  snap.bounds = bounds_;
  snap.counts.assign(bounds_.size() + 1, 0);
  for (const Shard& shard : shards_) {
    for (size_t i = 0; i < snap.counts.size(); ++i) {
      snap.counts[i] += shard.counts[i].load(std::memory_order_relaxed);
    }
    snap.sum += std::bit_cast<double>(
        shard.sum_bits.load(std::memory_order_relaxed));
  }
  for (uint64_t c : snap.counts) snap.count += c;
  {
    std::lock_guard<std::mutex> lock(exemplar_mutex_);
    snap.exemplars = exemplars_;
  }
  return snap;
}

std::vector<double> default_latency_bounds() {
  return {1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
          1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 0.1,  0.25,   0.5,
          1.0,  2.5,    5.0,  10.0};
}

Registry& Registry::global() {
  static Registry registry;
  return registry;
}

Counter& Registry::counter(const std::string& name,
                           const std::string& labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[SeriesKey{name, labels}];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name, const std::string& labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[SeriesKey{name, labels}];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name,
                               std::vector<double> upper_bounds,
                               const std::string& labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[SeriesKey{name, labels}];
  if (!slot) slot = std::make_unique<Histogram>(std::move(upper_bounds));
  return *slot;
}

void Registry::set_help(const std::string& name, const std::string& help) {
  std::lock_guard<std::mutex> lock(mutex_);
  help_[name] = help;
}

std::vector<CounterSample> Registry::counter_samples(
    std::string_view prefix) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<CounterSample> out;
  for (const auto& [key, c] : counters_) {
    if (key.name.compare(0, prefix.size(), prefix) != 0) continue;
    out.push_back({key.name, key.labels, c->value()});
  }
  return out;
}

std::vector<GaugeSample> Registry::gauge_samples(
    std::string_view prefix) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<GaugeSample> out;
  for (const auto& [key, g] : gauges_) {
    if (key.name.compare(0, prefix.size(), prefix) != 0) continue;
    out.push_back({key.name, key.labels, g->value()});
  }
  return out;
}

std::vector<HistogramSample> Registry::histogram_samples(
    std::string_view prefix) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<HistogramSample> out;
  for (const auto& [key, h] : histograms_) {
    if (key.name.compare(0, prefix.size(), prefix) != 0) continue;
    out.push_back({key.name, key.labels, h->snapshot()});
  }
  return out;
}

std::string Registry::prometheus() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  auto series = [](const std::string& name, const std::string& labels,
                   const std::string& extra = "") {
    std::string s = name;
    if (!labels.empty() || !extra.empty()) {
      s += "{" + labels;
      if (!labels.empty() && !extra.empty()) s += ",";
      s += extra + "}";
    }
    return s;
  };
  std::string last_family;
  auto type_line = [&](const std::string& name, const char* kind) {
    if (name != last_family) {
      auto help = help_.find(name);
      if (help != help_.end()) {
        // HELP text: escape backslash and newline per the exposition format.
        std::string escaped;
        for (char c : help->second) {
          if (c == '\\') {
            escaped += "\\\\";
          } else if (c == '\n') {
            escaped += "\\n";
          } else {
            escaped.push_back(c);
          }
        }
        out += "# HELP " + name + " " + escaped + "\n";
      }
      out += "# TYPE " + name + " " + kind + "\n";
      last_family = name;
    }
  };
  for (const auto& [key, c] : counters_) {
    type_line(key.name, "counter");
    out += series(key.name, key.labels) + " " + std::to_string(c->value()) +
           "\n";
  }
  last_family.clear();
  for (const auto& [key, g] : gauges_) {
    type_line(key.name, "gauge");
    out += series(key.name, key.labels) + " " + std::to_string(g->value()) +
           "\n";
  }
  last_family.clear();
  for (const auto& [key, h] : histograms_) {
    type_line(key.name, "histogram");
    HistogramSnapshot snap = h->snapshot();
    uint64_t cumulative = 0;
    for (size_t i = 0; i < snap.counts.size(); ++i) {
      cumulative += snap.counts[i];
      std::string le = i < snap.bounds.size()
                           ? format_double(snap.bounds[i])
                           : "+Inf";
      out += series(key.name + "_bucket", key.labels, "le=\"" + le + "\"") +
             " " + std::to_string(cumulative);
      // OpenMetrics-style exemplar: ties this bucket (p99 tails included)
      // to a concrete sampled request's trace id. Plain-Prometheus parsers
      // stop at the value, so the suffix is backwards compatible.
      if (i < snap.exemplars.size() && snap.exemplars[i].valid) {
        const Exemplar& ex = snap.exemplars[i];
        out += " # {trace_id=\"" + trace_id_hex(ex.trace_hi, ex.trace_lo) +
               "\"} " + format_double(ex.value);
      }
      out += "\n";
    }
    out += series(key.name + "_sum", key.labels) + " " +
           format_double(snap.sum) + "\n";
    out += series(key.name + "_count", key.labels) + " " +
           std::to_string(snap.count) + "\n";
  }
  // OpenMetrics requires an explicit end-of-exposition marker so a consumer
  // can tell a complete scrape from a truncated one (e.g. a connection cut
  // mid-transfer would otherwise parse as a smaller, valid exposition).
  out += "# EOF\n";
  return out;
}

std::optional<std::string> check_exposition(const std::string& text) {
  if (text.empty()) return "empty exposition";
  std::istringstream in(text);
  std::string line;
  std::set<std::string> typed_families;
  std::string current_family;
  bool saw_eof = false;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    auto fail = [&](const std::string& what) {
      return what + " at line " + std::to_string(line_no) + ": " + line;
    };
    if (saw_eof) return fail("content after # EOF");
    if (line.empty()) continue;
    if (line == "# EOF") {
      saw_eof = true;
      continue;
    }
    if (line[0] == '#') {
      std::istringstream meta(line);
      std::string hash;
      std::string keyword;
      std::string family;
      meta >> hash >> keyword >> family;
      if (keyword != "TYPE" && keyword != "HELP") {
        return fail("unknown comment keyword");
      }
      if (family.empty()) return fail("missing family name");
      if (keyword == "TYPE") {
        if (!typed_families.insert(family).second) {
          return fail("duplicate TYPE for family");
        }
        current_family = family;
        std::string kind;
        meta >> kind;
        if (kind != "counter" && kind != "gauge" && kind != "histogram") {
          return fail("unknown metric type");
        }
      }
      continue;
    }
    // A sample line: name[{labels}] value [# exemplar].
    size_t name_end = line.find_first_of("{ ");
    if (name_end == std::string::npos) return fail("sample without value");
    std::string name = line.substr(0, name_end);
    // Histogram samples append _bucket/_sum/_count to the family name.
    auto strip = [](const std::string& s, const char* suffix) {
      size_t n = std::strlen(suffix);
      return s.size() > n && s.compare(s.size() - n, n, suffix) == 0
                 ? s.substr(0, s.size() - n)
                 : s;
    };
    std::string family = strip(strip(strip(name, "_bucket"), "_sum"), "_count");
    if (family != current_family && name != current_family) {
      return fail("sample outside its TYPE block");
    }
    size_t pos = name_end;
    if (line[pos] == '{') {
      pos = line.find('}', pos);
      if (pos == std::string::npos) return fail("unterminated label set");
      ++pos;
    }
    while (pos < line.size() && line[pos] == ' ') ++pos;
    if (pos >= line.size()) return fail("sample without value");
    char* end = nullptr;
    std::strtod(line.c_str() + pos, &end);
    if (end == line.c_str() + pos) return fail("unparseable sample value");
  }
  if (!saw_eof) return std::string("missing # EOF terminator");
  return std::nullopt;
}

std::string Registry::json() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out = "{\n  \"metrics\": [";
  bool first = true;
  auto prefix = [&]() -> std::string& {
    out += first ? "\n    " : ",\n    ";
    first = false;
    return out;
  };
  auto header = [&](const SeriesKey& key, const char* kind) {
    prefix() += "{\"name\": \"" + json_escape(key.name) + "\", \"labels\": \"" +
                json_escape(key.labels) + "\", \"type\": \"" + kind + "\", ";
  };
  for (const auto& [key, c] : counters_) {
    header(key, "counter");
    out += "\"value\": " + std::to_string(c->value()) + "}";
  }
  for (const auto& [key, g] : gauges_) {
    header(key, "gauge");
    out += "\"value\": " + std::to_string(g->value()) + "}";
  }
  for (const auto& [key, h] : histograms_) {
    header(key, "histogram");
    HistogramSnapshot snap = h->snapshot();
    out += "\"count\": " + std::to_string(snap.count) +
           ", \"sum\": " + format_double(snap.sum) +
           ", \"p50\": " + format_double(snap.quantile(0.50)) +
           ", \"p95\": " + format_double(snap.quantile(0.95)) +
           ", \"p99\": " + format_double(snap.quantile(0.99)) +
           ", \"buckets\": [";
    for (size_t i = 0; i < snap.counts.size(); ++i) {
      out += i == 0 ? "" : ", ";
      out += "{\"le\": " + (i < snap.bounds.size()
                                ? format_double(snap.bounds[i])
                                : std::string("\"+Inf\"")) +
             ", \"count\": " + std::to_string(snap.counts[i]) + "}";
    }
    out += "]}";
  }
  out += "\n  ]\n}\n";
  return out;
}

}  // namespace acctee::obs
