// Span-based tracer for the IE→AE pipeline (DESIGN.md §12) with
// request-scoped causal trace contexts (DESIGN.md §17).
//
// A Span covers one pipeline stage (instrument, evidence verify,
// prepare/cache, instantiate, run, log sign) with wall-clock duration and
// parent/child nesting; parents are tracked implicitly per thread, so
// nested scopes need no plumbing. Finished spans land in a bounded ring
// buffer — a long-running gateway can leave tracing on and only ever holds
// the most recent `capacity` spans, counting what it dropped (the drop
// count also exports as acctee_trace_dropped_spans_total, so trace loss
// under load is visible on a scrape, not just in-process).
//
// A TraceContext carries one request's identity — a 128-bit trace id plus
// the billed tenant — from gateway admission through shard queue, worker,
// Instance and AccountingEnclave. Installing one (TraceScope) is a
// thread-local pointer swap; every span recorded under it is stamped with
// the trace id and tenant, so the whole request renders as one tree. The
// trace id itself is allocated deterministically from (tenant, per-tenant
// admission sequence) whether or not tracing is enabled: the id is bound
// into the signed resource log (core/resource_log.hpp payload v3) and must
// not depend on observability state. Only the *sampling* decision — does
// this request record spans at all — consults the tracer: per-tenant
// deterministic head sampling hashes the trace id against
// sampling_per_myriad(), so a sampled-out request pays one TLS load and a
// branch per span() call and nothing else.
//
// Disabled (the default) a span() call is one relaxed atomic load and
// returns an inert guard; nothing is timed, allocated, or locked. Spans are
// never created inside the interpreter's per-instruction/per-block path, so
// tracing cannot perturb ExecStats or signed logs (tested in
// tests/block_accounting_test.cpp and tests/tracing_test.cpp).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace acctee::obs {

class Counter;

/// One request's causal identity, propagated explicitly from gateway
/// admission to the accounting enclave.
struct TraceContext {
  uint64_t trace_hi = 0;  // 128-bit trace id, high half
  uint64_t trace_lo = 0;  // low half
  /// Span id the request's root span should parent under (0 = root).
  uint64_t parent_span = 0;
  /// Billed tenant; stamped onto every span recorded under this context.
  std::string tenant;
  /// Head-sampling decision, made once at admission: false makes every
  /// span()/emit() under this context inert (zero cost when sampled out).
  bool sampled = false;

  bool valid() const { return (trace_hi | trace_lo) != 0; }
};

/// Deterministic 128-bit trace id for the `sequence`-th admitted request of
/// `tenant` (the per-tenant admission counter). Pure function of its inputs:
/// the same request gets the same id whether tracing is off, sampled out,
/// or sampled in — a signed log's trace binding can therefore never differ
/// across observability states. Never returns the all-zero id.
TraceContext make_trace_context(const std::string& tenant, uint64_t sequence);

/// Lower-case 32-hex-digit rendering of a 128-bit trace id.
std::string trace_id_hex(uint64_t hi, uint64_t lo);
/// Parses trace_id_hex output; returns false on malformed input.
bool parse_trace_id_hex(const std::string& hex, uint64_t* hi, uint64_t* lo);

/// The calling thread's installed trace context (innermost TraceScope), or
/// nullptr outside any request scope.
const TraceContext* current_trace_context();

/// RAII install/restore of the calling thread's trace context. The caller
/// keeps ownership of the context and must keep it alive for the scope.
class TraceScope {
 public:
  explicit TraceScope(const TraceContext& context);
  ~TraceScope();
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  const TraceContext* previous_;
};

struct SpanRecord {
  uint64_t id = 0;
  uint64_t parent = 0;  // 0 = root
  std::string name;
  uint64_t start_ns = 0;     // since tracer construction (steady clock)
  uint64_t duration_ns = 0;
  uint32_t shard = 0;        // thread shard that produced the span
  // Trace-context stamp (all zero / empty outside a request scope).
  uint64_t trace_hi = 0;
  uint64_t trace_lo = 0;
  std::string tenant;
};

class Tracer {
 public:
  explicit Tracer(size_t capacity = 4096);

  /// The process-wide tracer the library's own spans target.
  static Tracer& global();

  void enable(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Head-sampling rate in 1/10000ths of admitted requests (10000 = every
  /// request, 100 = 1%, 0 = none). Only requests under a TraceContext are
  /// subject to sampling; context-free spans follow enable() alone.
  void set_sampling_per_myriad(uint32_t rate) {
    sampling_per_myriad_.store(rate > 10000 ? 10000 : rate,
                               std::memory_order_relaxed);
  }
  uint32_t sampling_per_myriad() const {
    return sampling_per_myriad_.load(std::memory_order_relaxed);
  }

  /// The deterministic head-sampling decision for a trace id: true iff the
  /// tracer is enabled and the id hashes under the sampling rate. Same id →
  /// same verdict, independent of thread or time.
  bool should_sample(uint64_t trace_hi, uint64_t trace_lo) const;

  /// RAII guard: records the span when destroyed. Inert when the tracer was
  /// disabled at creation.
  class Span {
   public:
    Span() = default;
    Span(Span&& other) noexcept { *this = std::move(other); }
    Span& operator=(Span&& other) noexcept;
    ~Span() { finish(); }
    /// Ends the span now (idempotent).
    void finish();
    bool active() const { return tracer_ != nullptr; }
    uint64_t id() const { return id_; }

   private:
    friend class Tracer;
    Tracer* tracer_ = nullptr;
    uint64_t id_ = 0;
    uint64_t parent_ = 0;
    const char* name_ = "";
    std::chrono::steady_clock::time_point start_{};
  };

  /// Opens a span named `name` (must be a literal or otherwise outlive the
  /// span) under the calling thread's innermost open span. Inert when the
  /// tracer is disabled or the installed trace context is sampled out.
  Span span(const char* name);

  /// Records a completed span with explicit endpoints — for stages whose
  /// start happened on another thread (e.g. queue.wait: pushed by a
  /// producer, measured at worker dequeue). Parents under the calling
  /// thread's innermost open span; same gating as span().
  void emit(const char* name, std::chrono::steady_clock::time_point start,
            std::chrono::steady_clock::time_point end);

  /// Finished spans, oldest first. `clear()` also resets the drop counter.
  std::vector<SpanRecord> snapshot() const;
  void clear();
  uint64_t dropped() const;

  /// Indented tree rendering (parents before children) with ms durations.
  std::string render_text() const;
  /// JSON array of span objects (bench_util-style conventions), including
  /// the trace id and tenant stamps.
  std::string render_json() const;
  /// Chrome trace-event format ({"traceEvents": [...]}): complete ("X")
  /// events with microsecond timestamps, tid = producing thread shard.
  /// Loadable directly in chrome://tracing and Perfetto.
  std::string render_chrome_json() const;
  /// Collapsed-stack rendering of per-request flows: one line per distinct
  /// root-to-span path, `tenant;root;...;name duration_ns`, duplicate paths
  /// merged by summing and lines sorted — deterministic for a given span
  /// multiset, pipeable to flamegraph.pl / inferno.
  std::string render_folded() const;

 private:
  void record(const Span& span, std::chrono::steady_clock::time_point end);
  void push(SpanRecord rec);

  std::atomic<bool> enabled_{false};
  std::atomic<uint32_t> sampling_per_myriad_{10000};
  std::atomic<uint64_t> next_id_{1};
  std::chrono::steady_clock::time_point epoch_;
  size_t capacity_;
  Counter* dropped_metric_;  // acctee_trace_dropped_spans_total
  mutable std::mutex mutex_;
  std::vector<SpanRecord> ring_;  // insertion order; bounded by capacity_
  size_t head_ = 0;               // next overwrite position once full
  uint64_t dropped_ = 0;
};

}  // namespace acctee::obs
