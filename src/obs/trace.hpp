// Span-based tracer for the IE→AE pipeline (DESIGN.md §12).
//
// A Span covers one pipeline stage (instrument, evidence verify,
// prepare/cache, instantiate, run, log sign) with wall-clock duration and
// parent/child nesting; parents are tracked implicitly per thread, so
// nested scopes need no plumbing. Finished spans land in a bounded ring
// buffer — a long-running gateway can leave tracing on and only ever holds
// the most recent `capacity` spans, counting what it dropped.
//
// Disabled (the default) a span() call is one relaxed atomic load and
// returns an inert guard; nothing is timed, allocated, or locked. Spans are
// never created inside the interpreter's per-instruction/per-block path, so
// tracing cannot perturb ExecStats or signed logs (tested in
// tests/block_accounting_test.cpp).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace acctee::obs {

struct SpanRecord {
  uint64_t id = 0;
  uint64_t parent = 0;  // 0 = root
  std::string name;
  uint64_t start_ns = 0;     // since tracer construction (steady clock)
  uint64_t duration_ns = 0;
  uint32_t shard = 0;        // thread shard that produced the span
};

class Tracer {
 public:
  explicit Tracer(size_t capacity = 4096);

  /// The process-wide tracer the library's own spans target.
  static Tracer& global();

  void enable(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// RAII guard: records the span when destroyed. Inert when the tracer was
  /// disabled at creation.
  class Span {
   public:
    Span() = default;
    Span(Span&& other) noexcept { *this = std::move(other); }
    Span& operator=(Span&& other) noexcept;
    ~Span() { finish(); }
    /// Ends the span now (idempotent).
    void finish();
    bool active() const { return tracer_ != nullptr; }

   private:
    friend class Tracer;
    Tracer* tracer_ = nullptr;
    uint64_t id_ = 0;
    uint64_t parent_ = 0;
    const char* name_ = "";
    std::chrono::steady_clock::time_point start_{};
  };

  /// Opens a span named `name` (must be a literal or otherwise outlive the
  /// span) under the calling thread's innermost open span.
  Span span(const char* name);

  /// Finished spans, oldest first. `clear()` also resets the drop counter.
  std::vector<SpanRecord> snapshot() const;
  void clear();
  uint64_t dropped() const;

  /// Indented tree rendering (parents before children) with ms durations.
  std::string render_text() const;
  /// JSON array of span objects (bench_util-style conventions).
  std::string render_json() const;
  /// Chrome trace-event format ({"traceEvents": [...]}): complete ("X")
  /// events with microsecond timestamps, tid = producing thread shard.
  /// Loadable directly in chrome://tracing and Perfetto.
  std::string render_chrome_json() const;

 private:
  void record(const Span& span, std::chrono::steady_clock::time_point end);

  std::atomic<bool> enabled_{false};
  std::atomic<uint64_t> next_id_{1};
  std::chrono::steady_clock::time_point epoch_;
  size_t capacity_;
  mutable std::mutex mutex_;
  std::vector<SpanRecord> ring_;  // insertion order; bounded by capacity_
  size_t head_ = 0;               // next overwrite position once full
  uint64_t dropped_ = 0;
};

}  // namespace acctee::obs
