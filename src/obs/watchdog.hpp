// Live SLO / billing-gap watchdog (DESIGN.md §17).
//
// A Watchdog periodically evaluates a small fixed rule set over a metrics
// Registry — the same registry the gateway and enclaves already write to —
// and raises alerts as both in-process records and `acctee_watchdog_*`
// series, so a scrape shows not just the raw numbers but whether the
// process itself judged them healthy:
//
//   queue_saturation : any acctee_gateway_queue_depth gauge at/over the
//                      configured depth (shard queue back-pressure),
//   shed_rate        : sheds/admissions over the last tick above the
//                      configured ratio (delta-based, not lifetime),
//   p99_regression   : any acctee_gateway_shard_request_seconds p99 above
//                      factor × its first-observed baseline,
//   billing_gap      : the caller-supplied probe reports the online
//                      metrics view and the signed ledger view of billing
//                      totals disagreeing (the online analogue of
//                      `acctee audit reconcile`),
//   cost_gap         : a tenant's cumulative shadow-meter true cost exceeds
//                      the configured multiple of its billed cost on some
//                      gap dimension (acctee_gap_* series fed by
//                      obs::GapMetrics from interp::GapProfile) — the
//                      billed-vs-true analogue of billing_gap: not "the
//                      books disagree" but "the books are right and the
//                      tenant is still costing far more than it pays".
//
// The billing-gap check is injected as a std::function rather than
// implemented here: obs/ sits below audit/ in the layering (obs → common
// only), so the gateway/CLI constructs a probe from audit::reconcile_set
// and hands it down. A null probe simply disables the rule.
//
// evaluate_once() is synchronous and lock-free against writers (it reads
// the registry's merged samples); start() runs it on a sampling thread
// until stop(). The watchdog only ever *reads* accounted state — it can
// raise alarms, never perturb billing.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"

namespace acctee::obs {

/// Online metrics↔ledger comparison result, produced by a caller-supplied
/// probe (typically audit::reconcile_set over the live ledgers + a scrape
/// of this registry).
struct BillingGapReport {
  bool checked = false;     // false: probe could not run this tick
  bool consistent = true;   // metrics and ledger agree
  std::string detail;       // human-readable mismatch description
};

using BillingGapProbe = std::function<BillingGapReport()>;

struct WatchdogConfig {
  /// Sampling-thread tick period for start()/stop().
  std::chrono::milliseconds interval{250};
  /// queue_saturation: alert when any shard queue-depth gauge >= this.
  int64_t queue_depth_threshold = 1024;
  /// shed_rate: alert when (shed deltas)/(admission deltas) this tick > this.
  double shed_rate_threshold = 0.05;
  /// p99_regression: alert when a shard's p99 > factor × first-tick baseline.
  double p99_regression_factor = 4.0;
  /// Minimum per-tick admissions before the shed-rate rule fires (avoids
  /// alerting on 1-of-2 sheds during warmup).
  uint64_t shed_rate_min_requests = 20;
  /// cost_gap: alert when a series' cumulative true/billed > this. The
  /// default tolerates the structural gap of well-behaved workloads (true
  /// cycles price cache misses and SGX overheads the counter deliberately
  /// does not) while catching adversarial amplification.
  double cost_gap_ratio_threshold = 64.0;
  /// cost_gap: ignore series whose cumulative true cost is below this
  /// (tiny workloads produce meaningless ratios).
  uint64_t cost_gap_min_true_cost = 1000000;
};

struct WatchdogAlert {
  // queue_saturation | shed_rate | p99_regression | billing_gap | cost_gap
  std::string rule;
  std::string detail;
  uint64_t tick = 0;   // evaluate_once() invocation that raised it
};

class Watchdog {
 public:
  explicit Watchdog(Registry& registry, WatchdogConfig config = {},
                    BillingGapProbe billing_probe = nullptr);
  ~Watchdog();
  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  /// Runs every rule once against the registry's current state. Safe to
  /// call directly (tests, CLI dashboards) with or without the thread.
  void evaluate_once();

  /// Starts/stops the background sampling thread. Idempotent.
  void start();
  void stop();

  uint64_t ticks() const { return ticks_.load(std::memory_order_relaxed); }
  /// All alerts raised so far, in raise order.
  std::vector<WatchdogAlert> alerts() const;

  /// One-screen plain-text dashboard: request/shed/billing totals, queue
  /// depths, per-shard p99s, watchdog verdicts, recent alerts. Rendered
  /// from the registry, so `acctee top` just calls this in a loop.
  std::string render_dashboard() const;

 private:
  void rule_queue_saturation(uint64_t tick);
  void rule_shed_rate(uint64_t tick);
  void rule_p99_regression(uint64_t tick);
  void rule_billing_gap(uint64_t tick);
  void rule_cost_gap(uint64_t tick);
  void raise(const std::string& rule, std::string detail, uint64_t tick);

  Registry& registry_;
  WatchdogConfig config_;
  BillingGapProbe billing_probe_;

  // Exported verdict series.
  Counter& ticks_metric_;
  Counter& queue_alerts_;
  Counter& shed_alerts_;
  Counter& p99_alerts_;
  Counter& gap_alerts_;
  Counter& cost_gap_alerts_;
  Gauge& billing_gap_gauge_;  // 1 while the last probe saw a gap
  Gauge& cost_gap_gauge_;     // worst true/billed ratio (permille) last tick

  std::atomic<uint64_t> ticks_{0};
  mutable std::mutex mutex_;
  std::vector<WatchdogAlert> alerts_;
  // shed_rate deltas: last tick's lifetime totals.
  uint64_t last_requests_ = 0;
  uint64_t last_shed_ = 0;
  // p99_regression baselines keyed by series labels, set on first sight.
  std::map<std::string, double> p99_baseline_;
  // cost_gap latch keyed by series labels: a series alerts once when it
  // crosses the threshold and re-arms only after dropping back under.
  std::map<std::string, bool> cost_gap_latched_;

  std::thread thread_;
  std::mutex wake_mutex_;
  std::condition_variable wake_;
  bool running_ = false;
};

}  // namespace acctee::obs
