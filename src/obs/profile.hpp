// Interpreter profiling hooks (DESIGN.md §12).
//
// A FuncProfiler attached to Instance::Options::profiler receives one
// callback per basic-block entry and attributes the block's instruction
// count and base-cost cycles to the containing function index — enough to
// answer "where do this workload's weighted instructions go?" without
// per-instruction bookkeeping. `sample_interval > 1` records only every
// Nth block (a sample), bounding the hook's cost on huge runs.
//
// The hook is compiled, not branched, out of the fast path: instance.cpp
// instantiates the run loop separately for profiled execution
// (ACCTEE_PROFILE in run_loop.inc), so with no profiler attached the hot
// loop is byte-for-byte the unprofiled build. Attribution is diagnostic
// (sampled, approximate around traps); the accounted ExecStats are never
// touched.
//
// Not thread-safe: one profiler per Instance (instances are single-
// threaded; merge profiles across requests at a higher layer if needed).
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace acctee::obs {

class FuncProfiler {
 public:
  struct Entry {
    uint64_t samples = 0;       // sampled block entries
    uint64_t instructions = 0;  // instructions in sampled blocks
    uint64_t cycles = 0;        // base-cost cycles in sampled blocks
  };

  explicit FuncProfiler(uint32_t sample_interval = 1)
      : interval_(sample_interval == 0 ? 1 : sample_interval),
        countdown_(interval_) {}

  /// Hot hook: called on every basic-block entry by the profiled run loop.
  void on_block(uint32_t func, uint32_t instructions, uint64_t cycles) {
    if (--countdown_ != 0) return;
    countdown_ = interval_;
    if (func >= entries_.size()) entries_.resize(func + 1);
    Entry& e = entries_[func];
    ++e.samples;
    e.instructions += instructions;
    e.cycles += cycles;
  }

  uint32_t sample_interval() const { return interval_; }
  /// Indexed by defined-function index; functions never entered (or never
  /// sampled) have all-zero entries.
  const std::vector<Entry>& entries() const { return entries_; }

  uint64_t total_sampled_instructions() const {
    uint64_t sum = 0;
    for (const Entry& e : entries_) sum += e.instructions;
    return sum;
  }

  /// Collapsed-stack ("folded") rendering for standard flamegraph tooling
  /// (flamegraph.pl, inferno, speedscope): one line per sampled function,
  /// `wasm;<frame> <value>`, where the value is the sampled instruction
  /// count. `names[i]`, when provided and non-empty, labels defined
  /// function i (e.g. its export name); otherwise frames are `func<i>`.
  /// Export names are module-controlled, so frames are scrubbed (folded
  /// separators and all control bytes become '_'); names that collide
  /// after scrubbing merge into one line by summing, keeping the output a
  /// deterministic function of the profile (first-entered order).
  std::string to_folded(const std::vector<std::string>* names = nullptr) const {
    // first-index order of each distinct scrubbed frame
    std::vector<std::pair<std::string, uint64_t>> lines;
    for (size_t i = 0; i < entries_.size(); ++i) {
      const Entry& e = entries_[i];
      if (e.samples == 0) continue;
      std::string frame = names != nullptr && i < names->size() &&
                                  !(*names)[i].empty()
                              ? (*names)[i]
                              : "func" + std::to_string(i);
      // Semicolons separate stack frames and spaces separate the value in
      // the folded format; control characters (tabs, CR, NUL, DEL) break
      // line-oriented consumers. Scrub them all so a hostile export name
      // cannot fake stack depth or forge extra samples.
      for (char& c : frame) {
        if (c == ';' || c == ' ' || static_cast<unsigned char>(c) < 0x20 ||
            c == 0x7f) {
          c = '_';
        }
      }
      bool merged = false;
      for (auto& [existing, value] : lines) {
        if (existing == frame) {
          value += e.instructions;
          merged = true;
          break;
        }
      }
      if (!merged) lines.emplace_back(std::move(frame), e.instructions);
    }
    std::string out;
    for (const auto& [frame, value] : lines) {
      out += "wasm;" + frame + " " + std::to_string(value) + "\n";
    }
    return out;
  }

  std::string to_json() const {
    std::string out = "{\n  \"sample_interval\": " +
                      std::to_string(interval_) + ",\n  \"functions\": [";
    bool first = true;
    for (size_t i = 0; i < entries_.size(); ++i) {
      const Entry& e = entries_[i];
      if (e.samples == 0) continue;
      out += first ? "\n    " : ",\n    ";
      first = false;
      out += "{\"func\": " + std::to_string(i) +
             ", \"samples\": " + std::to_string(e.samples) +
             ", \"instructions\": " + std::to_string(e.instructions) +
             ", \"cycles\": " + std::to_string(e.cycles) + "}";
    }
    out += "\n  ]\n}\n";
    return out;
  }

 private:
  uint32_t interval_;
  uint32_t countdown_;
  std::vector<Entry> entries_;
};

}  // namespace acctee::obs
