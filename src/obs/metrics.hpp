// Process-wide metrics registry (DESIGN.md §12).
//
// AccTEE's pitch is that both parties can trust the numbers; this layer
// makes the reproduction's *operational* numbers — cache hit rates, request
// latencies, trap counts, pipeline timings — uniformly observable under
// concurrent FaaS load without perturbing the accounted numbers themselves.
//
// Three metric kinds, Prometheus-flavoured:
//   * Counter   — monotone u64, sharded per thread (one relaxed atomic add
//                 on the hot path, merged at scrape time),
//   * Gauge     — i64 set/add (single atomic; gauges are set rarely),
//   * Histogram — fixed upper-bound buckets + count + sum, sharded like
//                 counters; quantiles are estimated from the buckets.
//
// Sharding beats a locked counter and beats a single contended atomic: each
// thread hashes to one of kMetricShards cache-line-padded cells, so writers
// on different threads touch different lines. Scrapes sum the cells with
// relaxed loads; every cell is monotone, so repeated scrapes of a counter
// are monotone too (tested under TSan in tests/obs_test.cpp).
//
// Handles returned by Registry::{counter,gauge,histogram} are stable for
// the registry's lifetime (metrics are never removed), so callers cache the
// pointer once and pay no lookup on the hot path.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace acctee::obs {

inline constexpr size_t kMetricShards = 16;

/// Stable per-thread shard index in [0, kMetricShards).
inline uint32_t shard_index() {
  static std::atomic<uint32_t> next{0};
  thread_local const uint32_t idx =
      next.fetch_add(1, std::memory_order_relaxed) % kMetricShards;
  return idx;
}

/// Monotone counter. add() is one relaxed fetch_add on a thread-local shard.
class Counter {
 public:
  void add(uint64_t delta) {
    cells_[shard_index()].v.fetch_add(delta, std::memory_order_relaxed);
  }
  void inc() { add(1); }

  /// Relaxed sum over shards; monotone across repeated calls.
  uint64_t value() const {
    uint64_t sum = 0;
    for (const Cell& c : cells_) sum += c.v.load(std::memory_order_relaxed);
    return sum;
  }

 private:
  struct alignas(64) Cell {
    std::atomic<uint64_t> v{0};
  };
  std::array<Cell, kMetricShards> cells_{};
};

/// Last-writer-wins gauge (plus add/sub for in-flight style gauges).
class Gauge {
 public:
  void set(int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void add(int64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }
  void sub(int64_t d) { v_.fetch_sub(d, std::memory_order_relaxed); }
  int64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

/// Last sampled observation that landed in one histogram bucket, tagged
/// with the trace id of the request that produced it. Links a latency
/// bucket (e.g. the p99 tail) to a concrete request whose span tree and
/// signed ledger interval can then be pulled up by trace id.
struct Exemplar {
  double value = 0;
  uint64_t trace_hi = 0;
  uint64_t trace_lo = 0;
  bool valid = false;
};

/// Merged view of one histogram at scrape time.
struct HistogramSnapshot {
  std::vector<double> bounds;    // upper bounds; +Inf bucket is implicit
  std::vector<uint64_t> counts;  // per-bucket (NOT cumulative); size = bounds+1
  std::vector<Exemplar> exemplars;  // per-bucket; valid only if one landed
  uint64_t count = 0;
  double sum = 0;

  /// Quantile estimate (q in [0,1]) by linear interpolation inside the
  /// bucket that crosses q*count. The open +Inf bucket reports its lower
  /// bound (the largest finite upper bound).
  double quantile(double q) const;
};

/// Fixed-bucket histogram; observe() is a relaxed add into a thread-local
/// shard's bucket plus a relaxed sum accumulation.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double v);
  HistogramSnapshot snapshot() const;
  const std::vector<double>& bounds() const { return bounds_; }

 private:
  struct alignas(64) Shard {
    std::vector<std::atomic<uint64_t>> counts;
    std::atomic<uint64_t> sum_bits{0};  // double accumulated via CAS
  };
  std::vector<double> bounds_;  // sorted ascending
  std::array<Shard, kMetricShards> shards_;
  // Exemplars are written only when the observing thread runs under a
  // *sampled* trace context, so the hot path (no context, or sampled out)
  // never touches this mutex — observability stays free when off.
  mutable std::mutex exemplar_mutex_;
  std::vector<Exemplar> exemplars_;  // per bucket, last-writer-wins
};

/// Default latency buckets: 1 µs .. 10 s, roughly x2.5 steps (seconds).
std::vector<double> default_latency_bounds();

/// Escapes a string for embedding in a JSON string literal (backslash,
/// double-quote, and all control characters, the latter as \uXXXX). Used by
/// every JSON exporter in this layer — span names and metric labels must
/// not be able to break the output.
std::string json_escape(const std::string& s);

/// Escapes a Prometheus label *value* per the text exposition format:
/// backslash, double-quote, and newline must be written as \\, \" and \n
/// inside the quotes. Required for any value not controlled by this
/// process (tenant names, function names, file paths).
std::string escape_label_value(std::string_view value);

/// Builds one `key="value"` label pair with the value escaped; join pairs
/// with commas to form a Registry labels fragment.
std::string label_pair(std::string_view key, std::string_view value);

/// Conformance check for a text exposition as produced by
/// Registry::prometheus(): every sample sits inside its family's single
/// `# TYPE` block, every sample line parses, and the exposition ends with
/// the OpenMetrics `# EOF` terminator (so consumers can distinguish a
/// complete scrape from a truncated one). Returns nullopt when conformant,
/// else a description of the first violation. Used by tests and available
/// to scrape consumers that want to reject torn expositions.
std::optional<std::string> check_exposition(const std::string& text);

/// One series' merged value at enumeration time (watchdog rule evaluation,
/// attested telemetry snapshots). Deterministically ordered by (name,
/// labels) — the registry's own map order.
struct CounterSample {
  std::string name;
  std::string labels;
  uint64_t value = 0;
};
struct GaugeSample {
  std::string name;
  std::string labels;
  int64_t value = 0;
};
struct HistogramSample {
  std::string name;
  std::string labels;
  HistogramSnapshot snapshot;
};

/// Named registry. Creation/lookup takes a mutex (cold); the returned
/// handles are lock-free. `labels` is a Prometheus label-pair fragment
/// (e.g. `enclave="3"`); (name, labels) identifies one series.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// The process-wide registry the library's own instrumentation targets.
  static Registry& global();

  Counter& counter(const std::string& name, const std::string& labels = "");
  Gauge& gauge(const std::string& name, const std::string& labels = "");
  /// Re-requesting an existing histogram series ignores `upper_bounds`.
  Histogram& histogram(const std::string& name,
                       std::vector<double> upper_bounds,
                       const std::string& labels = "");

  /// Registers the family's HELP text, emitted as `# HELP` ahead of the
  /// family's `# TYPE` line in prometheus(). Idempotent; last writer wins.
  void set_help(const std::string& name, const std::string& help);

  /// Merged values of every series whose name starts with `prefix` (empty
  /// prefix = all), ordered by (name, labels). Used by the watchdog's rule
  /// evaluation and the AE's attested telemetry snapshot.
  std::vector<CounterSample> counter_samples(std::string_view prefix = "") const;
  std::vector<GaugeSample> gauge_samples(std::string_view prefix = "") const;
  std::vector<HistogramSample> histogram_samples(
      std::string_view prefix = "") const;

  /// Prometheus text exposition format: `# HELP` (when registered) and
  /// `# TYPE` per family, then one line per series; histogram buckets carry
  /// OpenMetrics-style trace-id exemplars when a sampled request landed in
  /// them (`... <count> # {trace_id="<32 hex>"} <observed value>`).
  std::string prometheus() const;
  /// JSON (bench_util-style): {"metrics": [{...}, ...]}.
  std::string json() const;

 private:
  struct SeriesKey {
    std::string name;
    std::string labels;
    auto operator<=>(const SeriesKey&) const = default;
  };

  mutable std::mutex mutex_;
  std::map<SeriesKey, std::unique_ptr<Counter>> counters_;
  std::map<SeriesKey, std::unique_ptr<Gauge>> gauges_;
  std::map<SeriesKey, std::unique_ptr<Histogram>> histograms_;
  std::map<std::string, std::string> help_;
};

}  // namespace acctee::obs
