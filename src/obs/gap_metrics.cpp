#include "obs/gap_metrics.hpp"

#include <algorithm>
#include <utility>

namespace acctee::obs {

namespace {

bool scrub_ok(char c) {
  return (c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z') ||
         (c >= '0' && c <= '9') || c == '_' || c == '.' || c == '-';
}

}  // namespace

GapMetrics::GapMetrics(Registry& registry, Options options)
    : registry_(registry), options_(options) {
  registry.set_help("acctee_gap_billed_total",
                    "Billed cost per tenant and gap dimension.");
  registry.set_help("acctee_gap_true_total",
                    "Shadow-meter true cost per tenant and gap dimension.");
  registry.set_help(
      "acctee_gap_ratio_permille",
      "1000 x cumulative true/billed cost (billed clamped to 1).");
}

std::string GapMetrics::scrub(std::string_view tenant, size_t max_length) {
  std::string out;
  out.reserve(std::min(tenant.size(), max_length));
  for (char c : tenant) {
    if (out.size() >= max_length) break;
    out.push_back(scrub_ok(c) ? c : '_');
  }
  if (out.empty()) out = "_";
  return out;
}

void GapMetrics::record(std::string_view tenant, std::string_view dimension,
                        uint64_t billed, uint64_t true_cost) {
  std::string name = scrub(tenant, options_.max_name_length);
  Handles handles;
  uint64_t billed_total = 0;
  uint64_t true_total = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = tenants_.find(name);
    if (it == tenants_.end()) {
      it = tenants_.emplace(name, tenants_.size() < options_.max_tenants).first;
    }
    if (!it->second) name = kGapOverflowTenant;
    auto key = std::make_pair(name, std::string(dimension));
    auto sit = series_.find(key);
    if (sit == series_.end()) {
      std::string labels = label_pair("tenant", name) + "," +
                           label_pair("dimension", dimension);
      Handles h;
      h.billed = &registry_.counter("acctee_gap_billed_total", labels);
      h.true_cost = &registry_.counter("acctee_gap_true_total", labels);
      h.ratio_permille = &registry_.gauge("acctee_gap_ratio_permille", labels);
      sit = series_.emplace(std::move(key), h).first;
    }
    handles = sit->second;
    // The cumulative ratio must be computed over totals that include this
    // observation; reading under the lock keeps concurrent recorders of the
    // same series from publishing a stale ratio out of order.
    handles.billed->add(billed);
    handles.true_cost->add(true_cost);
    billed_total = handles.billed->value();
    true_total = handles.true_cost->value();
    handles.ratio_permille->set(static_cast<int64_t>(
        true_total * 1000 / (billed_total == 0 ? 1 : billed_total)));
  }
}

size_t GapMetrics::tenant_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  size_t n = 0;
  for (const auto& [name, own] : tenants_) {
    (void)name;
    if (own) ++n;
  }
  return n;
}

std::vector<GapMetrics::Series> GapMetrics::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<Series> out;
  out.reserve(series_.size());
  for (const auto& [key, handles] : series_) {
    Series s;
    s.tenant = key.first;
    s.dimension = key.second;
    s.billed = handles.billed->value();
    s.true_cost = handles.true_cost->value();
    s.ratio = static_cast<double>(s.true_cost) /
              static_cast<double>(s.billed == 0 ? 1 : s.billed);
    out.push_back(std::move(s));
  }
  return out;
}

}  // namespace acctee::obs
