// Byte-buffer primitives shared across all AccTEE modules.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace acctee {

/// Owned byte buffer. All wire formats (Wasm binaries, quotes, evidence,
/// resource logs) are represented as Bytes.
using Bytes = std::vector<uint8_t>;

/// Non-owning view over bytes.
using BytesView = std::span<const uint8_t>;

/// Encodes `data` as lowercase hex.
std::string to_hex(BytesView data);

/// Decodes a hex string (case-insensitive). Throws std::invalid_argument on
/// malformed input (odd length or non-hex characters).
Bytes from_hex(std::string_view hex);

/// Converts an ASCII string to bytes (no terminator).
Bytes to_bytes(std::string_view s);

/// Constant-time equality; avoids early-exit timing leaks when comparing
/// MACs or signatures.
bool ct_equal(BytesView a, BytesView b);

/// Appends `src` to `dst`.
void append(Bytes& dst, BytesView src);

/// Appends a little-endian fixed-width integer.
void append_u32le(Bytes& dst, uint32_t v);
void append_u64le(Bytes& dst, uint64_t v);

/// Reads a little-endian integer at `offset`; throws std::out_of_range if the
/// buffer is too short.
uint32_t read_u32le(BytesView data, size_t offset);
uint64_t read_u64le(BytesView data, size_t offset);

}  // namespace acctee
