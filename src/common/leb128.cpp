#include "common/leb128.hpp"

#include "common/error.hpp"

namespace acctee {

void write_uleb128(Bytes& out, uint64_t v) {
  do {
    uint8_t byte = v & 0x7f;
    v >>= 7;
    if (v != 0) byte |= 0x80;
    out.push_back(byte);
  } while (v != 0);
}

void write_sleb128(Bytes& out, int64_t v) {
  bool more = true;
  while (more) {
    uint8_t byte = v & 0x7f;
    v >>= 7;  // arithmetic shift keeps the sign
    if ((v == 0 && (byte & 0x40) == 0) || (v == -1 && (byte & 0x40) != 0)) {
      more = false;
    } else {
      byte |= 0x80;
    }
    out.push_back(byte);
  }
}

uint64_t read_uleb128(BytesView data, size_t* offset) {
  uint64_t result = 0;
  int shift = 0;
  for (int i = 0; i < 10; ++i) {
    if (*offset >= data.size()) throw ParseError("read_uleb128: truncated");
    uint8_t byte = data[(*offset)++];
    result |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) return result;
    shift += 7;
  }
  throw ParseError("read_uleb128: over-long encoding");
}

int64_t read_sleb128(BytesView data, size_t* offset) {
  int64_t result = 0;
  int shift = 0;
  for (int i = 0; i < 10; ++i) {
    if (*offset >= data.size()) throw ParseError("read_sleb128: truncated");
    uint8_t byte = data[(*offset)++];
    result |= static_cast<int64_t>(byte & 0x7f) << shift;
    shift += 7;
    if ((byte & 0x80) == 0) {
      if (shift < 64 && (byte & 0x40) != 0) {
        // Sign-extend in unsigned arithmetic: for shift == 63 the signed
        // form `-(1 << shift)` negates INT64_MIN, which is UB.
        result |= static_cast<int64_t>(~uint64_t{0} << shift);
      }
      return result;
    }
  }
  throw ParseError("read_sleb128: over-long encoding");
}

size_t uleb128_size(uint64_t v) {
  size_t n = 1;
  while (v >>= 7) ++n;
  return n;
}

}  // namespace acctee
