#include "common/bytes.hpp"

#include <stdexcept>

namespace acctee {

namespace {
constexpr char kHexDigits[] = "0123456789abcdef";

int hex_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}
}  // namespace

std::string to_hex(BytesView data) {
  std::string out;
  out.reserve(data.size() * 2);
  for (uint8_t b : data) {
    out.push_back(kHexDigits[b >> 4]);
    out.push_back(kHexDigits[b & 0xf]);
  }
  return out;
}

Bytes from_hex(std::string_view hex) {
  if (hex.size() % 2 != 0) {
    throw std::invalid_argument("from_hex: odd-length input");
  }
  Bytes out;
  out.reserve(hex.size() / 2);
  for (size_t i = 0; i < hex.size(); i += 2) {
    int hi = hex_value(hex[i]);
    int lo = hex_value(hex[i + 1]);
    if (hi < 0 || lo < 0) {
      throw std::invalid_argument("from_hex: non-hex character");
    }
    out.push_back(static_cast<uint8_t>(hi << 4 | lo));
  }
  return out;
}

Bytes to_bytes(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

bool ct_equal(BytesView a, BytesView b) {
  if (a.size() != b.size()) return false;
  uint8_t acc = 0;
  for (size_t i = 0; i < a.size(); ++i) acc |= a[i] ^ b[i];
  return acc == 0;
}

void append(Bytes& dst, BytesView src) {
  dst.insert(dst.end(), src.begin(), src.end());
}

void append_u32le(Bytes& dst, uint32_t v) {
  for (int i = 0; i < 4; ++i) dst.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void append_u64le(Bytes& dst, uint64_t v) {
  for (int i = 0; i < 8; ++i) dst.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

uint32_t read_u32le(BytesView data, size_t offset) {
  if (offset + 4 > data.size()) throw std::out_of_range("read_u32le");
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(data[offset + i]) << (8 * i);
  return v;
}

uint64_t read_u64le(BytesView data, size_t offset) {
  if (offset + 8 > data.size()) throw std::out_of_range("read_u64le");
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(data[offset + i]) << (8 * i);
  return v;
}

}  // namespace acctee
