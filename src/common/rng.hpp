// Deterministic pseudo-random number generation.
//
// All randomness in AccTEE's benchmarks, workload generators and simulated
// crypto key generation flows through SplitMix64/Xoshiro256** seeded
// explicitly, so every experiment in EXPERIMENTS.md is exactly reproducible.
#pragma once

#include <cstdint>

#include "common/bytes.hpp"

namespace acctee {

/// SplitMix64: used to expand a single 64-bit seed into generator state.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

/// Xoshiro256**: fast, high-quality PRNG for workload data and benchmarks.
class Xoshiro256 {
 public:
  explicit Xoshiro256(uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  uint64_t next() {
    const uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform value in [0, bound). bound must be > 0.
  uint64_t next_below(uint64_t bound) {
    // Rejection sampling to avoid modulo bias.
    const uint64_t threshold = -bound % bound;
    for (;;) {
      uint64_t r = next();
      if (r >= threshold) return r % bound;
    }
  }

  uint32_t next_u32() { return static_cast<uint32_t>(next() >> 32); }

  /// Uniform double in [0, 1).
  double next_double() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

  /// Fills a fresh buffer of `n` random bytes.
  Bytes next_bytes(size_t n) {
    Bytes out(n);
    for (size_t i = 0; i < n; ++i) out[i] = static_cast<uint8_t>(next());
    return out;
  }

 private:
  static uint64_t rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4];
};

}  // namespace acctee
