// Error taxonomy for the AccTEE library.
//
// Library errors are reported via exceptions rooted at acctee::Error; each
// subsystem has a distinct subclass so callers can handle (say) a workload
// trap differently from an attestation failure. Wasm *traps* are semantically
// part of the execution model (a trapped workload still produces a valid
// resource log), so TrapError carries the accounting state observed so far.
#pragma once

#include <stdexcept>
#include <string>

namespace acctee {

/// Root of all AccTEE exceptions.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Malformed WAT text or Wasm binary.
class ParseError : public Error {
 public:
  explicit ParseError(const std::string& what) : Error("parse error: " + what) {}
};

/// Module failed validation (type errors, bad indices, counter-protection
/// violations, ...).
class ValidationError : public Error {
 public:
  explicit ValidationError(const std::string& what)
      : Error("validation error: " + what) {}
};

/// Wasm execution trap (out-of-bounds access, unreachable, div by zero,
/// stack exhaustion, ...). Traps are recoverable at the embedder level.
class TrapError : public Error {
 public:
  explicit TrapError(const std::string& what) : Error("trap: " + what) {}
};

/// Host/embedding failure while linking or calling imports.
class LinkError : public Error {
 public:
  explicit LinkError(const std::string& what) : Error("link error: " + what) {}
};

/// Attestation/quote/evidence verification failure. Security-relevant:
/// callers must treat the peer as untrusted.
class AttestationError : public Error {
 public:
  explicit AttestationError(const std::string& what)
      : Error("attestation error: " + what) {}
};

/// Instrumentation pass failure (unexpected IR shape, protection violation).
class InstrumentError : public Error {
 public:
  explicit InstrumentError(const std::string& what)
      : Error("instrumentation error: " + what) {}
};

}  // namespace acctee
