// LEB128 variable-length integer encoding, as used by the WebAssembly binary
// format (unsigned for sizes/indices, signed for i32/i64 constants).
#pragma once

#include <cstdint>

#include "common/bytes.hpp"

namespace acctee {

/// Appends an unsigned LEB128 encoding of `v` to `out`.
void write_uleb128(Bytes& out, uint64_t v);

/// Appends a signed LEB128 encoding of `v` to `out`.
void write_sleb128(Bytes& out, int64_t v);

/// Reads an unsigned LEB128 value starting at *offset; advances *offset past
/// the encoding. Throws std::out_of_range on truncated input and
/// std::invalid_argument on over-long encodings (> 10 bytes).
uint64_t read_uleb128(BytesView data, size_t* offset);

/// Signed counterpart of read_uleb128.
int64_t read_sleb128(BytesView data, size_t* offset);

/// Number of bytes write_uleb128 would emit for `v`.
size_t uleb128_size(uint64_t v);

}  // namespace acctee
