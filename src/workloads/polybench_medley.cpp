// PolyBench data-mining and medley kernels, ported to Wasm.
#include <cmath>

#include "common/rng.hpp"
#include "workloads/polybench_common.hpp"
#include "workloads/polybench_kernels.hpp"

namespace acctee::workloads {

using pb::si;
using wasm::ValType;

namespace {
wasm::Module kernel_module(ModuleBuilder& mb, const Layout& layout,
                           const std::function<void(FuncBuilder&)>& body) {
  uint32_t pages = pb::pages_for(layout);
  mb.memory(pages, pages);
  mb.func("run", {}, {ValType::F64}, body);
  return mb.build();
}
}  // namespace

wasm::Module pb_correlation(uint32_t n) {
  // m variables (columns) x n observations (rows); m = n here.
  Layout layout;
  Arr data = layout.array_f64(n, n);
  Arr corr = layout.array_f64(n, n);
  Arr mean = layout.array_f64(1, n);
  Arr stddev = layout.array_f64(1, n);
  ModuleBuilder mb;
  double float_n = static_cast<double>(n);
  return kernel_module(mb, layout, [&](FuncBuilder& b) {
    pb::init2d(b, data, n, n, [&](Ex i, Ex j) {
      return pb::init_val(std::move(i), std::move(j), 3, 2, 1, si(n));
    });

    uint32_t i = b.local(ValType::I32);
    uint32_t j = b.local(ValType::I32);
    uint32_t k = b.local(ValType::I32);
    // Means.
    b.for_i32(j, ic(0), ic(si(n)), 1, [&] {
      b.store_f64(mean.at(b.get(j)), fc(0.0));
      b.for_i32(i, ic(0), ic(si(n)), 1, [&] {
        b.store_f64(mean.at(b.get(j)),
                    mean.ld(b.get(j)) + data.ld(b.get(i), b.get(j)));
      });
      b.store_f64(mean.at(b.get(j)), mean.ld(b.get(j)) / fc(float_n));
    });
    // Standard deviations (guard against near-zero, PolyBench-style).
    b.for_i32(j, ic(0), ic(si(n)), 1, [&] {
      b.store_f64(stddev.at(b.get(j)), fc(0.0));
      b.for_i32(i, ic(0), ic(si(n)), 1, [&] {
        Ex centered = data.ld(b.get(i), b.get(j)) - mean.ld(b.get(j));
        Ex centered2 = data.ld(b.get(i), b.get(j)) - mean.ld(b.get(j));
        b.store_f64(stddev.at(b.get(j)),
                    stddev.ld(b.get(j)) + std::move(centered) * std::move(centered2));
      });
      b.store_f64(stddev.at(b.get(j)),
                  f64_sqrt(stddev.ld(b.get(j)) / fc(float_n)));
      b.store_f64(stddev.at(b.get(j)),
                  select_ex(fc(1.0), stddev.ld(b.get(j)),
                            le(stddev.ld(b.get(j)), fc(0.1))));
    });
    // Normalise.
    b.for_i32(i, ic(0), ic(si(n)), 1, [&] {
      b.for_i32(j, ic(0), ic(si(n)), 1, [&] {
        b.store_f64(data.at(b.get(i), b.get(j)),
                    (data.ld(b.get(i), b.get(j)) - mean.ld(b.get(j))) /
                        (f64_sqrt(fc(float_n)) * stddev.ld(b.get(j))));
      });
    });
    // Correlation matrix.
    b.for_i32(i, ic(0), ic(si(n) - 1), 1, [&] {
      b.store_f64(corr.at(b.get(i), b.get(i)), fc(1.0));
      b.for_i32(j, b.get(i) + ic(1), ic(si(n)), 1, [&] {
        b.store_f64(corr.at(b.get(i), b.get(j)), fc(0.0));
        b.for_i32(k, ic(0), ic(si(n)), 1, [&] {
          b.store_f64(corr.at(b.get(i), b.get(j)),
                      corr.ld(b.get(i), b.get(j)) +
                          data.ld(b.get(k), b.get(i)) *
                              data.ld(b.get(k), b.get(j)));
        });
        b.store_f64(corr.at(b.get(j), b.get(i)), corr.ld(b.get(i), b.get(j)));
      });
    });
    b.store_f64(corr.at(ic(si(n) - 1), ic(si(n) - 1)), fc(1.0));

    uint32_t acc = b.local(ValType::F64);
    pb::checksum2d(b, corr, n, n, acc);
    b.emit(b.get(acc));
  });
}

wasm::Module pb_covariance(uint32_t n) {
  Layout layout;
  Arr data = layout.array_f64(n, n);
  Arr cov = layout.array_f64(n, n);
  Arr mean = layout.array_f64(1, n);
  ModuleBuilder mb;
  double float_n = static_cast<double>(n);
  return kernel_module(mb, layout, [&](FuncBuilder& b) {
    pb::init2d(b, data, n, n, [&](Ex i, Ex j) {
      return pb::init_val(std::move(i), std::move(j), 2, 3, 1, si(n));
    });

    uint32_t i = b.local(ValType::I32);
    uint32_t j = b.local(ValType::I32);
    uint32_t k = b.local(ValType::I32);
    b.for_i32(j, ic(0), ic(si(n)), 1, [&] {
      b.store_f64(mean.at(b.get(j)), fc(0.0));
      b.for_i32(i, ic(0), ic(si(n)), 1, [&] {
        b.store_f64(mean.at(b.get(j)),
                    mean.ld(b.get(j)) + data.ld(b.get(i), b.get(j)));
      });
      b.store_f64(mean.at(b.get(j)), mean.ld(b.get(j)) / fc(float_n));
    });
    b.for_i32(i, ic(0), ic(si(n)), 1, [&] {
      b.for_i32(j, ic(0), ic(si(n)), 1, [&] {
        b.store_f64(data.at(b.get(i), b.get(j)),
                    data.ld(b.get(i), b.get(j)) - mean.ld(b.get(j)));
      });
    });
    b.for_i32(i, ic(0), ic(si(n)), 1, [&] {
      b.for_i32(j, b.get(i), ic(si(n)), 1, [&] {
        b.store_f64(cov.at(b.get(i), b.get(j)), fc(0.0));
        b.for_i32(k, ic(0), ic(si(n)), 1, [&] {
          b.store_f64(cov.at(b.get(i), b.get(j)),
                      cov.ld(b.get(i), b.get(j)) +
                          data.ld(b.get(k), b.get(i)) *
                              data.ld(b.get(k), b.get(j)));
        });
        b.store_f64(cov.at(b.get(i), b.get(j)),
                    cov.ld(b.get(i), b.get(j)) / (fc(float_n) - fc(1.0)));
        b.store_f64(cov.at(b.get(j), b.get(i)), cov.ld(b.get(i), b.get(j)));
      });
    });

    uint32_t acc = b.local(ValType::F64);
    pb::checksum2d(b, cov, n, n, acc);
    b.emit(b.get(acc));
  });
}

wasm::Module pb_deriche(uint32_t n) {
  // Recursive 2-D edge-detection filter (f32, like the reference).
  // Coefficients for alpha = 0.25, precomputed on the host exactly as the
  // reference computes them at runtime.
  double alpha = 0.25;
  double k = (1.0 - std::exp(-alpha)) * (1.0 - std::exp(-alpha)) /
             (1.0 + 2.0 * alpha * std::exp(-alpha) - std::exp(2.0 * alpha));
  float a1 = static_cast<float>(k);
  float a2 = static_cast<float>(k * std::exp(-alpha) * (alpha - 1.0));
  float a3 = static_cast<float>(k * std::exp(-alpha) * (alpha + 1.0));
  float a4 = static_cast<float>(-k * std::exp(-2.0 * alpha));
  float b1 = static_cast<float>(std::pow(2.0, -alpha));
  float b2 = static_cast<float>(-std::exp(-2.0 * alpha));
  float c1 = 1.0f, c2 = 1.0f;

  Layout layout;
  Arr img_in = layout.array_f32(n, n);
  Arr img_out = layout.array_f32(n, n);
  Arr y1 = layout.array_f32(n, n);
  Arr y2 = layout.array_f32(n, n);
  ModuleBuilder mb;
  return kernel_module(mb, layout, [&](FuncBuilder& b) {
    {
      uint32_t i = b.local(ValType::I32);
      uint32_t j = b.local(ValType::I32);
      b.for_i32(i, ic(0), ic(si(n)), 1, [&] {
        b.for_i32(j, ic(0), ic(si(n)), 1, [&] {
          Ex v = to_f32(to_f64((b.get(i) * ic(313) + b.get(j) * ic(991)) %
                               ic(65536)) /
                        fc(65536.0));
          b.store_f32(img_in.at(b.get(i), b.get(j)), std::move(v));
        });
      });
    }

    uint32_t i = b.local(ValType::I32);
    uint32_t j = b.local(ValType::I32);
    uint32_t ym1 = b.local(ValType::F32);
    uint32_t ym2 = b.local(ValType::F32);
    uint32_t xm1 = b.local(ValType::F32);
    uint32_t xp1 = b.local(ValType::F32);
    uint32_t xp2 = b.local(ValType::F32);
    uint32_t yp1 = b.local(ValType::F32);
    uint32_t yp2 = b.local(ValType::F32);

    // Horizontal forward pass.
    b.for_i32(i, ic(0), ic(si(n)), 1, [&] {
      b.set(ym1, fc32(0));
      b.set(ym2, fc32(0));
      b.set(xm1, fc32(0));
      b.for_i32(j, ic(0), ic(si(n)), 1, [&] {
        b.store_f32(y1.at(b.get(i), b.get(j)),
                    fc32(a1) * img_in.ld(b.get(i), b.get(j)) +
                        fc32(a2) * b.get(xm1) + fc32(b1) * b.get(ym1) +
                        fc32(b2) * b.get(ym2));
        b.set(xm1, img_in.ld(b.get(i), b.get(j)));
        b.set(ym2, b.get(ym1));
        b.set(ym1, y1.ld(b.get(i), b.get(j)));
      });
    });
    // Horizontal backward pass.
    b.for_i32(i, ic(0), ic(si(n)), 1, [&] {
      b.set(yp1, fc32(0));
      b.set(yp2, fc32(0));
      b.set(xp1, fc32(0));
      b.set(xp2, fc32(0));
      b.for_i32(j, ic(si(n) - 1), ic(-1), -1, [&] {
        b.store_f32(y2.at(b.get(i), b.get(j)),
                    fc32(a3) * b.get(xp1) + fc32(a4) * b.get(xp2) +
                        fc32(b1) * b.get(yp1) + fc32(b2) * b.get(yp2));
        b.set(xp2, b.get(xp1));
        b.set(xp1, img_in.ld(b.get(i), b.get(j)));
        b.set(yp2, b.get(yp1));
        b.set(yp1, y2.ld(b.get(i), b.get(j)));
      });
    });
    b.for_i32(i, ic(0), ic(si(n)), 1, [&] {
      b.for_i32(j, ic(0), ic(si(n)), 1, [&] {
        b.store_f32(img_out.at(b.get(i), b.get(j)),
                    fc32(c1) * (y1.ld(b.get(i), b.get(j)) +
                                y2.ld(b.get(i), b.get(j))));
      });
    });
    // Vertical forward pass.
    b.for_i32(j, ic(0), ic(si(n)), 1, [&] {
      b.set(ym1, fc32(0));
      b.set(ym2, fc32(0));
      b.set(xm1, fc32(0));
      b.for_i32(i, ic(0), ic(si(n)), 1, [&] {
        b.store_f32(y1.at(b.get(i), b.get(j)),
                    fc32(a1) * img_out.ld(b.get(i), b.get(j)) +
                        fc32(a2) * b.get(xm1) + fc32(b1) * b.get(ym1) +
                        fc32(b2) * b.get(ym2));
        b.set(xm1, img_out.ld(b.get(i), b.get(j)));
        b.set(ym2, b.get(ym1));
        b.set(ym1, y1.ld(b.get(i), b.get(j)));
      });
    });
    // Vertical backward pass.
    b.for_i32(j, ic(0), ic(si(n)), 1, [&] {
      b.set(yp1, fc32(0));
      b.set(yp2, fc32(0));
      b.set(xp1, fc32(0));
      b.set(xp2, fc32(0));
      b.for_i32(i, ic(si(n) - 1), ic(-1), -1, [&] {
        b.store_f32(y2.at(b.get(i), b.get(j)),
                    fc32(a3) * b.get(xp1) + fc32(a4) * b.get(xp2) +
                        fc32(b1) * b.get(yp1) + fc32(b2) * b.get(yp2));
        b.set(xp2, b.get(xp1));
        b.set(xp1, img_out.ld(b.get(i), b.get(j)));
        b.set(yp2, b.get(yp1));
        b.set(yp1, y2.ld(b.get(i), b.get(j)));
      });
    });
    b.for_i32(i, ic(0), ic(si(n)), 1, [&] {
      b.for_i32(j, ic(0), ic(si(n)), 1, [&] {
        b.store_f32(img_out.at(b.get(i), b.get(j)),
                    fc32(c2) * (y1.ld(b.get(i), b.get(j)) +
                                y2.ld(b.get(i), b.get(j))));
      });
    });

    // f32 checksum, promoted to the f64 return value.
    uint32_t acc = b.local(ValType::F64);
    uint32_t ii = b.local(ValType::I32);
    uint32_t jj = b.local(ValType::I32);
    b.for_i32(ii, ic(0), ic(si(n)), 1, [&] {
      b.for_i32(jj, ic(0), ic(si(n)), 1, [&] {
        b.set(acc, b.get(acc) + to_f64(img_out.ld(b.get(ii), b.get(jj))));
      });
    });
    b.emit(b.get(acc));
  });
}

wasm::Module pb_nussinov(uint32_t n) {
  // RNA secondary-structure dynamic programming over an i32 table.
  Layout layout;
  Arr seq = layout.array_u8(1, n);
  Arr table = layout.array_i32(n, n);
  ModuleBuilder mb;
  // Deterministic base sequence as a data segment (values 0..3).
  {
    Bytes bases(n);
    Xoshiro256 rng(1234);
    for (uint32_t i = 0; i < n; ++i) {
      bases[i] = static_cast<uint8_t>(rng.next_below(4));
    }
    mb.data(seq.base, std::move(bases));
  }
  return kernel_module(mb, layout, [&](FuncBuilder& b) {
    uint32_t i = b.local(ValType::I32);
    uint32_t j = b.local(ValType::I32);
    uint32_t k = b.local(ValType::I32);
    uint32_t best = b.local(ValType::I32);

    // Zero the table.
    b.for_i32(i, ic(0), ic(si(n)), 1, [&] {
      b.for_i32(j, ic(0), ic(si(n)), 1, [&] {
        b.store_i32(table.at(b.get(i), b.get(j)), ic(0));
      });
    });

    auto max_into_best = [&](Ex candidate) {
      b.set(best, to_i32(select_ex(to_f64(candidate), to_f64(b.get(best)),
                                   gt(candidate, b.get(best)))));
    };
    (void)max_into_best;

    b.for_i32(i, ic(si(n) - 1), ic(-1), -1, [&] {
      b.for_i32(j, b.get(i) + ic(1), ic(si(n)), 1, [&] {
        b.set(best, table.ld(b.get(i), b.get(j)));
        // table[i][j-1]
        Ex left = table.ld(b.get(i), b.get(j) - ic(1));
        b.set(best, select_ex(left, b.get(best),
                              gt(table.ld(b.get(i), b.get(j) - ic(1)),
                                 b.get(best))));
        // table[i+1][j]
        b.if_then(lt(b.get(i) + ic(1), ic(si(n))), [&] {
          b.set(best, select_ex(table.ld(b.get(i) + ic(1), b.get(j)),
                                b.get(best),
                                gt(table.ld(b.get(i) + ic(1), b.get(j)),
                                   b.get(best))));
          // Pairing: table[i+1][j-1] + match(seq[i], seq[j]).
          b.if_then(lt(b.get(i), b.get(j) - ic(1)), [&] {
            Ex match = select_ex(
                ic(1), ic(0),
                eq(seq.ld(b.get(i)) + seq.ld(b.get(j)), ic(3)));
            uint32_t cand = b.local(ValType::I32);
            b.set(cand, table.ld(b.get(i) + ic(1), b.get(j) - ic(1)) +
                            std::move(match));
            b.set(best,
                  select_ex(b.get(cand), b.get(best),
                            gt(b.get(cand), b.get(best))));
          });
        });
        // Splits.
        b.for_i32(k, b.get(i) + ic(1), b.get(j), 1, [&] {
          uint32_t cand = b.local(ValType::I32);
          b.set(cand, table.ld(b.get(i), b.get(k)) +
                          table.ld(b.get(k) + ic(1), b.get(j)));
          b.set(best, select_ex(b.get(cand), b.get(best),
                                gt(b.get(cand), b.get(best))));
        });
        b.store_i32(table.at(b.get(i), b.get(j)), b.get(best));
      });
    });

    // Checksum: the optimal score plus the table sum.
    uint32_t acc = b.local(ValType::F64);
    b.for_i32(i, ic(0), ic(si(n)), 1, [&] {
      b.for_i32(j, ic(0), ic(si(n)), 1, [&] {
        b.set(acc, b.get(acc) + to_f64(table.ld(b.get(i), b.get(j))));
      });
    });
    b.emit(b.get(acc));
  });
}

}  // namespace acctee::workloads
