// PolyBench linear-algebra kernels (BLAS-shaped), ported to Wasm.
//
// Each port keeps the loop order and dependence structure of PolyBench/C
// 4.2.1; constants (alpha, beta) match the reference initialisation spirit.
#include "workloads/polybench_common.hpp"
#include "workloads/polybench_kernels.hpp"

namespace acctee::workloads {

using pb::si;
using wasm::ValType;

namespace {
constexpr double kAlpha = 1.5;
constexpr double kBeta = 1.2;

/// Common wrapper: single exported `run: [] -> [f64]` function.
wasm::Module kernel_module(const Layout& layout,
                           const std::function<void(FuncBuilder&)>& body) {
  ModuleBuilder mb;
  uint32_t pages = pb::pages_for(layout);
  mb.memory(pages, pages);
  mb.func("run", {}, {ValType::F64}, body);
  return mb.build();
}
}  // namespace

wasm::Module pb_gemm(uint32_t n) {
  Layout layout;
  Arr A = layout.array_f64(n, n);
  Arr B = layout.array_f64(n, n);
  Arr C = layout.array_f64(n, n);
  return kernel_module(layout, [&](FuncBuilder& b) {
    pb::init2d(b, A, n, n, [&](Ex i, Ex j) { return pb::init_val(i, j, 1, 1, 0, si(n)); });
    pb::init2d(b, B, n, n, [&](Ex i, Ex j) { return pb::init_val(i, j, 1, 2, 1, si(n)); });
    pb::init2d(b, C, n, n, [&](Ex i, Ex j) { return pb::init_val(i, j, 3, 1, 2, si(n)); });

    uint32_t i = b.local(ValType::I32);
    uint32_t j = b.local(ValType::I32);
    uint32_t k = b.local(ValType::I32);
    b.for_i32(i, ic(0), ic(si(n)), 1, [&] {
      b.for_i32(j, ic(0), ic(si(n)), 1, [&] {
        b.store_f64(C.at(b.get(i), b.get(j)),
                    C.ld(b.get(i), b.get(j)) * fc(kBeta));
      });
      b.for_i32(k, ic(0), ic(si(n)), 1, [&] {
        b.for_i32(j, ic(0), ic(si(n)), 1, [&] {
          b.store_f64(C.at(b.get(i), b.get(j)),
                      C.ld(b.get(i), b.get(j)) +
                          fc(kAlpha) * A.ld(b.get(i), b.get(k)) *
                              B.ld(b.get(k), b.get(j)));
        });
      });
    });

    uint32_t acc = b.local(ValType::F64);
    pb::checksum2d(b, C, n, n, acc);
    b.emit(b.get(acc));
  });
}

wasm::Module pb_2mm(uint32_t n) {
  Layout layout;
  Arr A = layout.array_f64(n, n);
  Arr B = layout.array_f64(n, n);
  Arr C = layout.array_f64(n, n);
  Arr D = layout.array_f64(n, n);
  Arr tmp = layout.array_f64(n, n);
  return kernel_module(layout, [&](FuncBuilder& b) {
    pb::init2d(b, A, n, n, [&](Ex i, Ex j) { return pb::init_val(i, j, 1, 1, 0, si(n)); });
    pb::init2d(b, B, n, n, [&](Ex i, Ex j) { return pb::init_val(i, j, 1, 1, 1, si(n)); });
    pb::init2d(b, C, n, n, [&](Ex i, Ex j) { return pb::init_val(i, j, 3, 1, 0, si(n)); });
    pb::init2d(b, D, n, n, [&](Ex i, Ex j) { return pb::init_val(i, j, 2, 1, 0, si(n)); });

    uint32_t i = b.local(ValType::I32);
    uint32_t j = b.local(ValType::I32);
    uint32_t k = b.local(ValType::I32);
    // tmp = alpha * A * B
    b.for_i32(i, ic(0), ic(si(n)), 1, [&] {
      b.for_i32(j, ic(0), ic(si(n)), 1, [&] {
        b.store_f64(tmp.at(b.get(i), b.get(j)), fc(0.0));
      });
      b.for_i32(k, ic(0), ic(si(n)), 1, [&] {
        b.for_i32(j, ic(0), ic(si(n)), 1, [&] {
          b.store_f64(tmp.at(b.get(i), b.get(j)),
                      tmp.ld(b.get(i), b.get(j)) +
                          fc(kAlpha) * A.ld(b.get(i), b.get(k)) *
                              B.ld(b.get(k), b.get(j)));
        });
      });
    });
    // D = beta * D + tmp * C
    b.for_i32(i, ic(0), ic(si(n)), 1, [&] {
      b.for_i32(j, ic(0), ic(si(n)), 1, [&] {
        b.store_f64(D.at(b.get(i), b.get(j)),
                    D.ld(b.get(i), b.get(j)) * fc(kBeta));
      });
      b.for_i32(k, ic(0), ic(si(n)), 1, [&] {
        b.for_i32(j, ic(0), ic(si(n)), 1, [&] {
          b.store_f64(D.at(b.get(i), b.get(j)),
                      D.ld(b.get(i), b.get(j)) +
                          tmp.ld(b.get(i), b.get(k)) * C.ld(b.get(k), b.get(j)));
        });
      });
    });

    uint32_t acc = b.local(ValType::F64);
    pb::checksum2d(b, D, n, n, acc);
    b.emit(b.get(acc));
  });
}

wasm::Module pb_3mm(uint32_t n) {
  Layout layout;
  Arr A = layout.array_f64(n, n);
  Arr B = layout.array_f64(n, n);
  Arr C = layout.array_f64(n, n);
  Arr D = layout.array_f64(n, n);
  Arr E = layout.array_f64(n, n);
  Arr F = layout.array_f64(n, n);
  Arr G = layout.array_f64(n, n);
  return kernel_module(layout, [&](FuncBuilder& b) {
    pb::init2d(b, A, n, n, [&](Ex i, Ex j) { return pb::init_val(i, j, 1, 1, 0, si(n)); });
    pb::init2d(b, B, n, n, [&](Ex i, Ex j) { return pb::init_val(i, j, 1, 1, 1, si(n)); });
    pb::init2d(b, C, n, n, [&](Ex i, Ex j) { return pb::init_val(i, j, 3, 1, 2, si(n)); });
    pb::init2d(b, D, n, n, [&](Ex i, Ex j) { return pb::init_val(i, j, 2, 1, 2, si(n)); });

    uint32_t i = b.local(ValType::I32);
    uint32_t j = b.local(ValType::I32);
    uint32_t k = b.local(ValType::I32);
    auto matmul = [&](const Arr& dst, const Arr& lhs, const Arr& rhs) {
      b.for_i32(i, ic(0), ic(si(n)), 1, [&] {
        b.for_i32(j, ic(0), ic(si(n)), 1, [&] {
          b.store_f64(dst.at(b.get(i), b.get(j)), fc(0.0));
        });
        b.for_i32(k, ic(0), ic(si(n)), 1, [&] {
          b.for_i32(j, ic(0), ic(si(n)), 1, [&] {
            b.store_f64(dst.at(b.get(i), b.get(j)),
                        dst.ld(b.get(i), b.get(j)) +
                            lhs.ld(b.get(i), b.get(k)) *
                                rhs.ld(b.get(k), b.get(j)));
          });
        });
      });
    };
    matmul(E, A, B);
    matmul(F, C, D);
    matmul(G, E, F);

    uint32_t acc = b.local(ValType::F64);
    pb::checksum2d(b, G, n, n, acc);
    b.emit(b.get(acc));
  });
}

wasm::Module pb_atax(uint32_t n) {
  Layout layout;
  Arr A = layout.array_f64(n, n);
  Arr x = layout.array_f64(1, n);
  Arr y = layout.array_f64(1, n);
  return kernel_module(layout, [&](FuncBuilder& b) {
    pb::init2d(b, A, n, n, [&](Ex i, Ex j) { return pb::init_val(i, j, 1, 1, 0, si(n)); });
    pb::init1d(b, x, n, [&](Ex i) { return pb::init_val(i, ic(0), 1, 0, 1, si(n)); });
    pb::init1d(b, y, n, [&](Ex) { return fc(0.0); });

    uint32_t i = b.local(ValType::I32);
    uint32_t j = b.local(ValType::I32);
    uint32_t tmp = b.local(ValType::F64);
    b.for_i32(i, ic(0), ic(si(n)), 1, [&] {
      b.set(tmp, fc(0.0));
      b.for_i32(j, ic(0), ic(si(n)), 1, [&] {
        b.set(tmp, b.get(tmp) + A.ld(b.get(i), b.get(j)) * x.ld(b.get(j)));
      });
      b.for_i32(j, ic(0), ic(si(n)), 1, [&] {
        b.store_f64(y.at(b.get(j)),
                    y.ld(b.get(j)) + A.ld(b.get(i), b.get(j)) * b.get(tmp));
      });
    });

    uint32_t acc = b.local(ValType::F64);
    pb::checksum1d(b, y, n, acc);
    b.emit(b.get(acc));
  });
}

wasm::Module pb_bicg(uint32_t n) {
  Layout layout;
  Arr A = layout.array_f64(n, n);
  Arr s = layout.array_f64(1, n);
  Arr q = layout.array_f64(1, n);
  Arr p = layout.array_f64(1, n);
  Arr r = layout.array_f64(1, n);
  return kernel_module(layout, [&](FuncBuilder& b) {
    pb::init2d(b, A, n, n, [&](Ex i, Ex j) { return pb::init_val(i, j, 1, 2, 0, si(n)); });
    pb::init1d(b, p, n, [&](Ex i) { return pb::init_val(i, ic(0), 1, 0, 0, si(n)); });
    pb::init1d(b, r, n, [&](Ex i) { return pb::init_val(i, ic(0), 1, 0, 1, si(n)); });
    pb::init1d(b, s, n, [&](Ex) { return fc(0.0); });

    uint32_t i = b.local(ValType::I32);
    uint32_t j = b.local(ValType::I32);
    uint32_t qi = b.local(ValType::F64);
    b.for_i32(i, ic(0), ic(si(n)), 1, [&] {
      b.set(qi, fc(0.0));
      b.for_i32(j, ic(0), ic(si(n)), 1, [&] {
        b.store_f64(s.at(b.get(j)),
                    s.ld(b.get(j)) + r.ld(b.get(i)) * A.ld(b.get(i), b.get(j)));
        b.set(qi, b.get(qi) + A.ld(b.get(i), b.get(j)) * p.ld(b.get(j)));
      });
      b.store_f64(q.at(b.get(i)), b.get(qi));
    });

    uint32_t acc = b.local(ValType::F64);
    pb::checksum1d(b, s, n, acc);
    pb::checksum1d(b, q, n, acc);
    b.emit(b.get(acc));
  });
}

wasm::Module pb_mvt(uint32_t n) {
  Layout layout;
  Arr A = layout.array_f64(n, n);
  Arr x1 = layout.array_f64(1, n);
  Arr x2 = layout.array_f64(1, n);
  Arr y1 = layout.array_f64(1, n);
  Arr y2 = layout.array_f64(1, n);
  return kernel_module(layout, [&](FuncBuilder& b) {
    pb::init2d(b, A, n, n, [&](Ex i, Ex j) { return pb::init_val(i, j, 1, 1, 0, si(n)); });
    pb::init1d(b, x1, n, [&](Ex i) { return pb::init_val(i, ic(0), 1, 0, 0, si(n)); });
    pb::init1d(b, x2, n, [&](Ex i) { return pb::init_val(i, ic(0), 1, 0, 1, si(n)); });
    pb::init1d(b, y1, n, [&](Ex i) { return pb::init_val(i, ic(0), 3, 0, 1, si(n)); });
    pb::init1d(b, y2, n, [&](Ex i) { return pb::init_val(i, ic(0), 2, 0, 1, si(n)); });

    uint32_t i = b.local(ValType::I32);
    uint32_t j = b.local(ValType::I32);
    b.for_i32(i, ic(0), ic(si(n)), 1, [&] {
      b.for_i32(j, ic(0), ic(si(n)), 1, [&] {
        b.store_f64(x1.at(b.get(i)),
                    x1.ld(b.get(i)) + A.ld(b.get(i), b.get(j)) * y1.ld(b.get(j)));
      });
    });
    b.for_i32(i, ic(0), ic(si(n)), 1, [&] {
      b.for_i32(j, ic(0), ic(si(n)), 1, [&] {
        b.store_f64(x2.at(b.get(i)),
                    x2.ld(b.get(i)) + A.ld(b.get(j), b.get(i)) * y2.ld(b.get(j)));
      });
    });

    uint32_t acc = b.local(ValType::F64);
    pb::checksum1d(b, x1, n, acc);
    pb::checksum1d(b, x2, n, acc);
    b.emit(b.get(acc));
  });
}

wasm::Module pb_gesummv(uint32_t n) {
  Layout layout;
  Arr A = layout.array_f64(n, n);
  Arr B = layout.array_f64(n, n);
  Arr x = layout.array_f64(1, n);
  Arr y = layout.array_f64(1, n);
  Arr tmp = layout.array_f64(1, n);
  return kernel_module(layout, [&](FuncBuilder& b) {
    pb::init2d(b, A, n, n, [&](Ex i, Ex j) { return pb::init_val(i, j, 1, 1, 0, si(n)); });
    pb::init2d(b, B, n, n, [&](Ex i, Ex j) { return pb::init_val(i, j, 1, 2, 0, si(n)); });
    pb::init1d(b, x, n, [&](Ex i) { return pb::init_val(i, ic(0), 1, 0, 0, si(n)); });

    uint32_t i = b.local(ValType::I32);
    uint32_t j = b.local(ValType::I32);
    uint32_t t = b.local(ValType::F64);
    uint32_t yy = b.local(ValType::F64);
    b.for_i32(i, ic(0), ic(si(n)), 1, [&] {
      b.set(t, fc(0.0));
      b.set(yy, fc(0.0));
      b.for_i32(j, ic(0), ic(si(n)), 1, [&] {
        b.set(t, b.get(t) + A.ld(b.get(i), b.get(j)) * x.ld(b.get(j)));
        b.set(yy, b.get(yy) + B.ld(b.get(i), b.get(j)) * x.ld(b.get(j)));
      });
      b.store_f64(tmp.at(b.get(i)), b.get(t));
      b.store_f64(y.at(b.get(i)), fc(kAlpha) * b.get(t) + fc(kBeta) * b.get(yy));
    });

    uint32_t acc = b.local(ValType::F64);
    pb::checksum1d(b, y, n, acc);
    b.emit(b.get(acc));
  });
}

wasm::Module pb_gemver(uint32_t n) {
  Layout layout;
  Arr A = layout.array_f64(n, n);
  Arr u1 = layout.array_f64(1, n);
  Arr v1 = layout.array_f64(1, n);
  Arr u2 = layout.array_f64(1, n);
  Arr v2 = layout.array_f64(1, n);
  Arr w = layout.array_f64(1, n);
  Arr x = layout.array_f64(1, n);
  Arr y = layout.array_f64(1, n);
  Arr z = layout.array_f64(1, n);
  return kernel_module(layout, [&](FuncBuilder& b) {
    pb::init2d(b, A, n, n, [&](Ex i, Ex j) { return pb::init_val(i, j, 1, 1, 0, si(n)); });
    pb::init1d(b, u1, n, [&](Ex i) { return pb::init_val(i, ic(0), 1, 0, 0, si(n)); });
    pb::init1d(b, u2, n, [&](Ex i) { return pb::init_val(i, ic(0), 1, 0, 1, si(n)); });
    pb::init1d(b, v1, n, [&](Ex i) { return pb::init_val(i, ic(0), 2, 0, 1, si(n)); });
    pb::init1d(b, v2, n, [&](Ex i) { return pb::init_val(i, ic(0), 3, 0, 1, si(n)); });
    pb::init1d(b, y, n, [&](Ex i) { return pb::init_val(i, ic(0), 2, 0, 3, si(n)); });
    pb::init1d(b, z, n, [&](Ex i) { return pb::init_val(i, ic(0), 1, 0, 5, si(n)); });
    pb::init1d(b, x, n, [&](Ex) { return fc(0.0); });
    pb::init1d(b, w, n, [&](Ex) { return fc(0.0); });

    uint32_t i = b.local(ValType::I32);
    uint32_t j = b.local(ValType::I32);
    b.for_i32(i, ic(0), ic(si(n)), 1, [&] {
      b.for_i32(j, ic(0), ic(si(n)), 1, [&] {
        b.store_f64(A.at(b.get(i), b.get(j)),
                    A.ld(b.get(i), b.get(j)) + u1.ld(b.get(i)) * v1.ld(b.get(j)) +
                        u2.ld(b.get(i)) * v2.ld(b.get(j)));
      });
    });
    b.for_i32(i, ic(0), ic(si(n)), 1, [&] {
      b.for_i32(j, ic(0), ic(si(n)), 1, [&] {
        b.store_f64(x.at(b.get(i)),
                    x.ld(b.get(i)) + fc(kBeta) * A.ld(b.get(j), b.get(i)) *
                                         y.ld(b.get(j)));
      });
    });
    b.for_i32(i, ic(0), ic(si(n)), 1, [&] {
      b.store_f64(x.at(b.get(i)), x.ld(b.get(i)) + z.ld(b.get(i)));
    });
    b.for_i32(i, ic(0), ic(si(n)), 1, [&] {
      b.for_i32(j, ic(0), ic(si(n)), 1, [&] {
        b.store_f64(w.at(b.get(i)),
                    w.ld(b.get(i)) + fc(kAlpha) * A.ld(b.get(i), b.get(j)) *
                                         x.ld(b.get(j)));
      });
    });

    uint32_t acc = b.local(ValType::F64);
    pb::checksum1d(b, w, n, acc);
    b.emit(b.get(acc));
  });
}

wasm::Module pb_symm(uint32_t n) {
  Layout layout;
  Arr A = layout.array_f64(n, n);
  Arr B = layout.array_f64(n, n);
  Arr C = layout.array_f64(n, n);
  return kernel_module(layout, [&](FuncBuilder& b) {
    pb::init2d(b, A, n, n, [&](Ex i, Ex j) { return pb::init_val(i, j, 1, 1, 0, si(n)); });
    pb::init2d(b, B, n, n, [&](Ex i, Ex j) { return pb::init_val(i, j, 1, 2, 1, si(n)); });
    pb::init2d(b, C, n, n, [&](Ex i, Ex j) { return pb::init_val(i, j, 2, 1, 1, si(n)); });

    uint32_t i = b.local(ValType::I32);
    uint32_t j = b.local(ValType::I32);
    uint32_t k = b.local(ValType::I32);
    uint32_t temp2 = b.local(ValType::F64);
    b.for_i32(i, ic(0), ic(si(n)), 1, [&] {
      b.for_i32(j, ic(0), ic(si(n)), 1, [&] {
        b.set(temp2, fc(0.0));
        b.for_i32(k, ic(0), b.get(i), 1, [&] {
          b.store_f64(C.at(b.get(k), b.get(j)),
                      C.ld(b.get(k), b.get(j)) +
                          fc(kAlpha) * B.ld(b.get(i), b.get(j)) *
                              A.ld(b.get(i), b.get(k)));
          b.set(temp2, b.get(temp2) + B.ld(b.get(k), b.get(j)) *
                                          A.ld(b.get(i), b.get(k)));
        });
        b.store_f64(C.at(b.get(i), b.get(j)),
                    fc(kBeta) * C.ld(b.get(i), b.get(j)) +
                        fc(kAlpha) * B.ld(b.get(i), b.get(j)) *
                            A.ld(b.get(i), b.get(i)) +
                        fc(kAlpha) * b.get(temp2));
      });
    });

    uint32_t acc = b.local(ValType::F64);
    pb::checksum2d(b, C, n, n, acc);
    b.emit(b.get(acc));
  });
}

wasm::Module pb_syrk(uint32_t n) {
  Layout layout;
  Arr A = layout.array_f64(n, n);
  Arr C = layout.array_f64(n, n);
  return kernel_module(layout, [&](FuncBuilder& b) {
    pb::init2d(b, A, n, n, [&](Ex i, Ex j) { return pb::init_val(i, j, 1, 1, 0, si(n)); });
    pb::init2d(b, C, n, n, [&](Ex i, Ex j) { return pb::init_val(i, j, 1, 2, 2, si(n)); });

    uint32_t i = b.local(ValType::I32);
    uint32_t j = b.local(ValType::I32);
    uint32_t k = b.local(ValType::I32);
    b.for_i32(i, ic(0), ic(si(n)), 1, [&] {
      b.for_i32(j, ic(0), b.get(i) + ic(1), 1, [&] {
        b.store_f64(C.at(b.get(i), b.get(j)),
                    C.ld(b.get(i), b.get(j)) * fc(kBeta));
      });
      b.for_i32(k, ic(0), ic(si(n)), 1, [&] {
        b.for_i32(j, ic(0), b.get(i) + ic(1), 1, [&] {
          b.store_f64(C.at(b.get(i), b.get(j)),
                      C.ld(b.get(i), b.get(j)) +
                          fc(kAlpha) * A.ld(b.get(i), b.get(k)) *
                              A.ld(b.get(j), b.get(k)));
        });
      });
    });

    uint32_t acc = b.local(ValType::F64);
    pb::checksum2d(b, C, n, n, acc);
    b.emit(b.get(acc));
  });
}

wasm::Module pb_syr2k(uint32_t n) {
  Layout layout;
  Arr A = layout.array_f64(n, n);
  Arr B = layout.array_f64(n, n);
  Arr C = layout.array_f64(n, n);
  return kernel_module(layout, [&](FuncBuilder& b) {
    pb::init2d(b, A, n, n, [&](Ex i, Ex j) { return pb::init_val(i, j, 1, 1, 0, si(n)); });
    pb::init2d(b, B, n, n, [&](Ex i, Ex j) { return pb::init_val(i, j, 2, 1, 1, si(n)); });
    pb::init2d(b, C, n, n, [&](Ex i, Ex j) { return pb::init_val(i, j, 1, 3, 2, si(n)); });

    uint32_t i = b.local(ValType::I32);
    uint32_t j = b.local(ValType::I32);
    uint32_t k = b.local(ValType::I32);
    b.for_i32(i, ic(0), ic(si(n)), 1, [&] {
      b.for_i32(j, ic(0), b.get(i) + ic(1), 1, [&] {
        b.store_f64(C.at(b.get(i), b.get(j)),
                    C.ld(b.get(i), b.get(j)) * fc(kBeta));
      });
      b.for_i32(k, ic(0), ic(si(n)), 1, [&] {
        b.for_i32(j, ic(0), b.get(i) + ic(1), 1, [&] {
          b.store_f64(
              C.at(b.get(i), b.get(j)),
              C.ld(b.get(i), b.get(j)) +
                  A.ld(b.get(j), b.get(k)) * fc(kAlpha) *
                      B.ld(b.get(i), b.get(k)) +
                  B.ld(b.get(j), b.get(k)) * fc(kAlpha) *
                      A.ld(b.get(i), b.get(k)));
        });
      });
    });

    uint32_t acc = b.local(ValType::F64);
    pb::checksum2d(b, C, n, n, acc);
    b.emit(b.get(acc));
  });
}

wasm::Module pb_trmm(uint32_t n) {
  Layout layout;
  Arr A = layout.array_f64(n, n);
  Arr B = layout.array_f64(n, n);
  return kernel_module(layout, [&](FuncBuilder& b) {
    pb::init2d(b, A, n, n, [&](Ex i, Ex j) { return pb::init_val(i, j, 1, 1, 0, si(n)); });
    pb::init2d(b, B, n, n, [&](Ex i, Ex j) { return pb::init_val(i, j, 3, 1, 1, si(n)); });

    uint32_t i = b.local(ValType::I32);
    uint32_t j = b.local(ValType::I32);
    uint32_t k = b.local(ValType::I32);
    b.for_i32(i, ic(0), ic(si(n)), 1, [&] {
      b.for_i32(j, ic(0), ic(si(n)), 1, [&] {
        b.for_i32(k, b.get(i) + ic(1), ic(si(n)), 1, [&] {
          b.store_f64(B.at(b.get(i), b.get(j)),
                      B.ld(b.get(i), b.get(j)) +
                          A.ld(b.get(k), b.get(i)) * B.ld(b.get(k), b.get(j)));
        });
        b.store_f64(B.at(b.get(i), b.get(j)),
                    B.ld(b.get(i), b.get(j)) * fc(kAlpha));
      });
    });

    uint32_t acc = b.local(ValType::F64);
    pb::checksum2d(b, B, n, n, acc);
    b.emit(b.get(acc));
  });
}

wasm::Module pb_doitgen(uint32_t n) {
  // nr = nq = np = n; A is (nr*nq) x np, C4 is np x np, sum is 1 x np.
  Layout layout;
  Arr A = layout.array_f64(n * n, n);
  Arr C4 = layout.array_f64(n, n);
  Arr sum = layout.array_f64(1, n);
  return kernel_module(layout, [&](FuncBuilder& b) {
    pb::init2d(b, A, n * n, n, [&](Ex i, Ex j) { return pb::init_val(i, j, 1, 1, 0, si(n)); });
    pb::init2d(b, C4, n, n, [&](Ex i, Ex j) { return pb::init_val(i, j, 1, 2, 0, si(n)); });

    uint32_t r = b.local(ValType::I32);
    uint32_t q = b.local(ValType::I32);
    uint32_t p = b.local(ValType::I32);
    uint32_t s = b.local(ValType::I32);
    uint32_t row = b.local(ValType::I32);
    b.for_i32(r, ic(0), ic(si(n)), 1, [&] {
      b.for_i32(q, ic(0), ic(si(n)), 1, [&] {
        b.set(row, b.get(r) * ic(si(n)) + b.get(q));
        b.for_i32(p, ic(0), ic(si(n)), 1, [&] {
          b.store_f64(sum.at(b.get(p)), fc(0.0));
          b.for_i32(s, ic(0), ic(si(n)), 1, [&] {
            b.store_f64(sum.at(b.get(p)),
                        sum.ld(b.get(p)) +
                            A.ld(b.get(row), b.get(s)) * C4.ld(b.get(s), b.get(p)));
          });
        });
        b.for_i32(p, ic(0), ic(si(n)), 1, [&] {
          b.store_f64(A.at(b.get(row), b.get(p)), sum.ld(b.get(p)));
        });
      });
    });

    uint32_t acc = b.local(ValType::F64);
    pb::checksum2d(b, A, n * n, n, acc);
    b.emit(b.get(acc));
  });
}

}  // namespace acctee::workloads
