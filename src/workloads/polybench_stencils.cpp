// PolyBench stencil kernels, ported to Wasm.
//
// Time-step counts are fixed small constants (the paper's evaluation varies
// problem size, not time depth); footprints scale with n, which is what
// drives the EPC-paging behaviour in the Fig. 6 experiment.
#include "workloads/polybench_common.hpp"
#include "workloads/polybench_kernels.hpp"

namespace acctee::workloads {

using pb::si;
using wasm::ValType;

namespace {
constexpr int32_t kTsteps = 1;  // footprint, not time depth, drives Fig. 6

wasm::Module kernel_module(const Layout& layout,
                           const std::function<void(FuncBuilder&)>& body) {
  ModuleBuilder mb;
  uint32_t pages = pb::pages_for(layout);
  mb.memory(pages, pages);
  mb.func("run", {}, {ValType::F64}, body);
  return mb.build();
}
}  // namespace

wasm::Module pb_jacobi_1d(uint32_t n) {
  Layout layout;
  Arr A = layout.array_f64(1, n);
  Arr B = layout.array_f64(1, n);
  return kernel_module(layout, [&](FuncBuilder& b) {
    pb::init1d(b, A, n, [&](Ex i) {
      return (to_f64(i) + fc(2.0)) / fc(static_cast<double>(n));
    });
    pb::init1d(b, B, n, [&](Ex i) {
      return (to_f64(i) + fc(3.0)) / fc(static_cast<double>(n));
    });

    uint32_t t = b.local(ValType::I32);
    uint32_t i = b.local(ValType::I32);
    b.for_i32(t, ic(0), ic(kTsteps), 1, [&] {
      b.for_i32(i, ic(1), ic(si(n) - 1), 1, [&] {
        b.store_f64(B.at(b.get(i)),
                    fc(0.33333) * (A.ld(b.get(i) - ic(1)) + A.ld(b.get(i)) +
                                   A.ld(b.get(i) + ic(1))));
      });
      b.for_i32(i, ic(1), ic(si(n) - 1), 1, [&] {
        b.store_f64(A.at(b.get(i)),
                    fc(0.33333) * (B.ld(b.get(i) - ic(1)) + B.ld(b.get(i)) +
                                   B.ld(b.get(i) + ic(1))));
      });
    });

    uint32_t acc = b.local(ValType::F64);
    pb::checksum1d(b, A, n, acc);
    b.emit(b.get(acc));
  });
}

wasm::Module pb_jacobi_2d(uint32_t n) {
  Layout layout;
  Arr A = layout.array_f64(n, n);
  Arr B = layout.array_f64(n, n);
  return kernel_module(layout, [&](FuncBuilder& b) {
    pb::init2d(b, A, n, n, [&](Ex i, Ex j) {
      return pb::init_val(std::move(i), std::move(j), 1, 2, 2, si(n));
    });
    pb::init2d(b, B, n, n, [&](Ex i, Ex j) {
      return pb::init_val(std::move(i), std::move(j), 1, 3, 3, si(n));
    });

    uint32_t t = b.local(ValType::I32);
    uint32_t i = b.local(ValType::I32);
    uint32_t j = b.local(ValType::I32);
    auto sweep = [&](const Arr& dst, const Arr& src) {
      b.for_i32(i, ic(1), ic(si(n) - 1), 1, [&] {
        b.for_i32(j, ic(1), ic(si(n) - 1), 1, [&] {
          b.store_f64(dst.at(b.get(i), b.get(j)),
                      fc(0.2) * (src.ld(b.get(i), b.get(j)) +
                                 src.ld(b.get(i), b.get(j) - ic(1)) +
                                 src.ld(b.get(i), b.get(j) + ic(1)) +
                                 src.ld(b.get(i) + ic(1), b.get(j)) +
                                 src.ld(b.get(i) - ic(1), b.get(j))));
        });
      });
    };
    b.for_i32(t, ic(0), ic(kTsteps), 1, [&] {
      sweep(B, A);
      sweep(A, B);
    });

    uint32_t acc = b.local(ValType::F64);
    pb::checksum2d(b, A, n, n, acc);
    b.emit(b.get(acc));
  });
}

wasm::Module pb_seidel_2d(uint32_t n) {
  Layout layout;
  Arr A = layout.array_f64(n, n);
  return kernel_module(layout, [&](FuncBuilder& b) {
    pb::init2d(b, A, n, n, [&](Ex i, Ex j) {
      return pb::init_val(std::move(i), std::move(j), 1, 1, 2, si(n));
    });

    uint32_t t = b.local(ValType::I32);
    uint32_t i = b.local(ValType::I32);
    uint32_t j = b.local(ValType::I32);
    b.for_i32(t, ic(0), ic(kTsteps), 1, [&] {
      b.for_i32(i, ic(1), ic(si(n) - 1), 1, [&] {
        b.for_i32(j, ic(1), ic(si(n) - 1), 1, [&] {
          b.store_f64(
              A.at(b.get(i), b.get(j)),
              (A.ld(b.get(i) - ic(1), b.get(j) - ic(1)) +
               A.ld(b.get(i) - ic(1), b.get(j)) +
               A.ld(b.get(i) - ic(1), b.get(j) + ic(1)) +
               A.ld(b.get(i), b.get(j) - ic(1)) + A.ld(b.get(i), b.get(j)) +
               A.ld(b.get(i), b.get(j) + ic(1)) +
               A.ld(b.get(i) + ic(1), b.get(j) - ic(1)) +
               A.ld(b.get(i) + ic(1), b.get(j)) +
               A.ld(b.get(i) + ic(1), b.get(j) + ic(1))) /
                  fc(9.0));
        });
      });
    });

    uint32_t acc = b.local(ValType::F64);
    pb::checksum2d(b, A, n, n, acc);
    b.emit(b.get(acc));
  });
}

wasm::Module pb_fdtd_2d(uint32_t n) {
  Layout layout;
  Arr ex = layout.array_f64(n, n);
  Arr ey = layout.array_f64(n, n);
  Arr hz = layout.array_f64(n, n);
  return kernel_module(layout, [&](FuncBuilder& b) {
    pb::init2d(b, ex, n, n, [&](Ex i, Ex j) {
      return to_f64(std::move(i) * (std::move(j) + ic(1))) /
             fc(static_cast<double>(n));
    });
    pb::init2d(b, ey, n, n, [&](Ex i, Ex j) {
      return to_f64(std::move(i) * (std::move(j) + ic(2))) /
             fc(static_cast<double>(n));
    });
    pb::init2d(b, hz, n, n, [&](Ex i, Ex j) {
      return to_f64(std::move(i) * (std::move(j) + ic(3))) /
             fc(static_cast<double>(n));
    });

    uint32_t t = b.local(ValType::I32);
    uint32_t i = b.local(ValType::I32);
    uint32_t j = b.local(ValType::I32);
    b.for_i32(t, ic(0), ic(kTsteps), 1, [&] {
      b.for_i32(j, ic(0), ic(si(n)), 1, [&] {
        b.store_f64(ey.at(ic(0), b.get(j)), to_f64(b.get(t)));
      });
      b.for_i32(i, ic(1), ic(si(n)), 1, [&] {
        b.for_i32(j, ic(0), ic(si(n)), 1, [&] {
          b.store_f64(ey.at(b.get(i), b.get(j)),
                      ey.ld(b.get(i), b.get(j)) -
                          fc(0.5) * (hz.ld(b.get(i), b.get(j)) -
                                     hz.ld(b.get(i) - ic(1), b.get(j))));
        });
      });
      b.for_i32(i, ic(0), ic(si(n)), 1, [&] {
        b.for_i32(j, ic(1), ic(si(n)), 1, [&] {
          b.store_f64(ex.at(b.get(i), b.get(j)),
                      ex.ld(b.get(i), b.get(j)) -
                          fc(0.5) * (hz.ld(b.get(i), b.get(j)) -
                                     hz.ld(b.get(i), b.get(j) - ic(1))));
        });
      });
      b.for_i32(i, ic(0), ic(si(n) - 1), 1, [&] {
        b.for_i32(j, ic(0), ic(si(n) - 1), 1, [&] {
          b.store_f64(hz.at(b.get(i), b.get(j)),
                      hz.ld(b.get(i), b.get(j)) -
                          fc(0.7) * (ex.ld(b.get(i), b.get(j) + ic(1)) -
                                     ex.ld(b.get(i), b.get(j)) +
                                     ey.ld(b.get(i) + ic(1), b.get(j)) -
                                     ey.ld(b.get(i), b.get(j))));
        });
      });
    });

    uint32_t acc = b.local(ValType::F64);
    pb::checksum2d(b, hz, n, n, acc);
    b.emit(b.get(acc));
  });
}

wasm::Module pb_heat_3d(uint32_t n) {
  // 3-D arrays flattened as (n*n) x n: element (i,j,k) at row i*n+j, col k.
  Layout layout;
  Arr A = layout.array_f64(n * n, n);
  Arr B = layout.array_f64(n * n, n);
  return kernel_module(layout, [&](FuncBuilder& b) {
    pb::init2d(b, A, n * n, n, [&](Ex r, Ex k) {
      return pb::init_val(std::move(r), std::move(k), 1, 1, 1, si(n));
    });
    pb::init2d(b, B, n * n, n, [&](Ex r, Ex k) {
      return pb::init_val(std::move(r), std::move(k), 1, 2, 1, si(n));
    });

    uint32_t t = b.local(ValType::I32);
    uint32_t i = b.local(ValType::I32);
    uint32_t j = b.local(ValType::I32);
    uint32_t k = b.local(ValType::I32);
    uint32_t row = b.local(ValType::I32);
    auto sweep = [&](const Arr& dst, const Arr& src) {
      b.for_i32(i, ic(1), ic(si(n) - 1), 1, [&] {
        b.for_i32(j, ic(1), ic(si(n) - 1), 1, [&] {
          b.set(row, b.get(i) * ic(si(n)) + b.get(j));
          b.for_i32(k, ic(1), ic(si(n) - 1), 1, [&] {
            Ex center = src.ld(b.get(row), b.get(k));
            Ex di = src.ld(b.get(row) + ic(si(n)), b.get(k)) -
                    fc(2.0) * src.ld(b.get(row), b.get(k)) +
                    src.ld(b.get(row) - ic(si(n)), b.get(k));
            Ex dj = src.ld(b.get(row) + ic(1), b.get(k)) -
                    fc(2.0) * src.ld(b.get(row), b.get(k)) +
                    src.ld(b.get(row) - ic(1), b.get(k));
            Ex dk = src.ld(b.get(row), b.get(k) + ic(1)) -
                    fc(2.0) * src.ld(b.get(row), b.get(k)) +
                    src.ld(b.get(row), b.get(k) - ic(1));
            b.store_f64(dst.at(b.get(row), b.get(k)),
                        fc(0.125) * std::move(di) + fc(0.125) * std::move(dj) +
                            fc(0.125) * std::move(dk) + std::move(center));
          });
        });
      });
    };
    b.for_i32(t, ic(0), ic(kTsteps), 1, [&] {
      sweep(B, A);
      sweep(A, B);
    });

    uint32_t acc = b.local(ValType::F64);
    pb::checksum2d(b, A, n * n, n, acc);
    b.emit(b.get(acc));
  });
}

wasm::Module pb_adi(uint32_t n) {
  Layout layout;
  Arr u = layout.array_f64(n, n);
  Arr v = layout.array_f64(n, n);
  Arr p = layout.array_f64(n, n);
  Arr q = layout.array_f64(n, n);
  // Constants from the PolyBench reference (DX = DY = 1/n, DT = 1/tsteps).
  double DX = 1.0 / n, DY = 1.0 / n, DT = 1.0 / kTsteps;
  double B1 = 2.0, B2 = 1.0;
  double mul1 = B1 * DT / (DX * DX);
  double mul2 = B2 * DT / (DY * DY);
  double a = -mul1 / 2.0, bb = 1.0 + mul1, c = a;
  double d = -mul2 / 2.0, e = 1.0 + mul2, f = d;
  return kernel_module(layout, [&](FuncBuilder& b) {
    pb::init2d(b, u, n, n, [&](Ex i, Ex j) {
      return pb::init_val(std::move(i), std::move(j), 1, 1, 1, si(n));
    });

    uint32_t t = b.local(ValType::I32);
    uint32_t i = b.local(ValType::I32);
    uint32_t j = b.local(ValType::I32);
    b.for_i32(t, ic(0), ic(kTsteps), 1, [&] {
      // Column sweep.
      b.for_i32(i, ic(1), ic(si(n) - 1), 1, [&] {
        b.store_f64(v.at(ic(0), b.get(i)), fc(1.0));
        b.store_f64(p.at(b.get(i), ic(0)), fc(0.0));
        b.store_f64(q.at(b.get(i), ic(0)), fc(1.0));
        b.for_i32(j, ic(1), ic(si(n) - 1), 1, [&] {
          Ex denom = fc(a) * p.ld(b.get(i), b.get(j) - ic(1)) + fc(bb);
          b.store_f64(p.at(b.get(i), b.get(j)), neg(fc(c)) / denom);
          Ex denom2 = fc(a) * p.ld(b.get(i), b.get(j) - ic(1)) + fc(bb);
          b.store_f64(
              q.at(b.get(i), b.get(j)),
              (neg(fc(d)) * u.ld(b.get(j), b.get(i) - ic(1)) +
               (fc(1.0) + fc(2.0) * fc(d)) * u.ld(b.get(j), b.get(i)) -
               fc(f) * u.ld(b.get(j), b.get(i) + ic(1)) -
               fc(a) * q.ld(b.get(i), b.get(j) - ic(1))) /
                  std::move(denom2));
        });
        b.store_f64(v.at(ic(si(n) - 1), b.get(i)), fc(1.0));
        b.for_i32(j, ic(si(n) - 2), ic(0), -1, [&] {
          b.store_f64(v.at(b.get(j), b.get(i)),
                      p.ld(b.get(i), b.get(j)) * v.ld(b.get(j) + ic(1), b.get(i)) +
                          q.ld(b.get(i), b.get(j)));
        });
      });
      // Row sweep.
      b.for_i32(i, ic(1), ic(si(n) - 1), 1, [&] {
        b.store_f64(u.at(b.get(i), ic(0)), fc(1.0));
        b.store_f64(p.at(b.get(i), ic(0)), fc(0.0));
        b.store_f64(q.at(b.get(i), ic(0)), fc(1.0));
        b.for_i32(j, ic(1), ic(si(n) - 1), 1, [&] {
          Ex denom = fc(d) * p.ld(b.get(i), b.get(j) - ic(1)) + fc(e);
          b.store_f64(p.at(b.get(i), b.get(j)), neg(fc(f)) / denom);
          Ex denom2 = fc(d) * p.ld(b.get(i), b.get(j) - ic(1)) + fc(e);
          b.store_f64(
              q.at(b.get(i), b.get(j)),
              (neg(fc(a)) * v.ld(b.get(i) - ic(1), b.get(j)) +
               (fc(1.0) + fc(2.0) * fc(a)) * v.ld(b.get(i), b.get(j)) -
               fc(c) * v.ld(b.get(i) + ic(1), b.get(j)) -
               fc(d) * q.ld(b.get(i), b.get(j) - ic(1))) /
                  std::move(denom2));
        });
        b.store_f64(u.at(b.get(i), ic(si(n) - 1)), fc(1.0));
        b.for_i32(j, ic(si(n) - 2), ic(0), -1, [&] {
          b.store_f64(u.at(b.get(i), b.get(j)),
                      p.ld(b.get(i), b.get(j)) * u.ld(b.get(i), b.get(j) + ic(1)) +
                          q.ld(b.get(i), b.get(j)));
        });
      });
    });

    uint32_t acc = b.local(ValType::F64);
    pb::checksum2d(b, u, n, n, acc);
    b.emit(b.get(acc));
  });
}

}  // namespace acctee::workloads
