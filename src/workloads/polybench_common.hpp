// Shared helpers for the PolyBench kernel ports (internal to workloads).
#pragma once

#include "workloads/builder.hpp"

namespace acctee::workloads::pb {

/// PolyBench-style initialiser value: ((i*a + j*b + c) % m) / m as f64.
inline Ex init_val(Ex i, Ex j, int32_t a, int32_t b, int32_t c, int32_t m) {
  Ex num = std::move(i) * ic(a) + std::move(j) * ic(b) + ic(c);
  return to_f64(std::move(num) % ic(m)) / to_f64(ic(m));
}

/// Emits: for i in [0,rows) for j in [0,cols): A[i][j] = value(i, j).
inline void init2d(FuncBuilder& b, const Arr& A, uint32_t rows, uint32_t cols,
                   const std::function<Ex(Ex, Ex)>& value) {
  uint32_t i = b.local(wasm::ValType::I32);
  uint32_t j = b.local(wasm::ValType::I32);
  b.for_i32(i, ic(0), ic(static_cast<int32_t>(rows)), 1, [&] {
    b.for_i32(j, ic(0), ic(static_cast<int32_t>(cols)), 1, [&] {
      b.store_f64(A.at(b.get(i), b.get(j)), value(b.get(i), b.get(j)));
    });
  });
}

/// Emits: for i in [0,len): A[i] = value(i).
inline void init1d(FuncBuilder& b, const Arr& A, uint32_t len,
                   const std::function<Ex(Ex)>& value) {
  uint32_t i = b.local(wasm::ValType::I32);
  b.for_i32(i, ic(0), ic(static_cast<int32_t>(len)), 1, [&] {
    b.store_f64(A.at(b.get(i)), value(b.get(i)));
  });
}

/// Accumulates sum of all elements of a 2-D f64 array into `acc` (an f64
/// local the caller owns).
inline void checksum2d(FuncBuilder& b, const Arr& A, uint32_t rows,
                       uint32_t cols, uint32_t acc) {
  uint32_t i = b.local(wasm::ValType::I32);
  uint32_t j = b.local(wasm::ValType::I32);
  b.for_i32(i, ic(0), ic(static_cast<int32_t>(rows)), 1, [&] {
    b.for_i32(j, ic(0), ic(static_cast<int32_t>(cols)), 1, [&] {
      b.set(acc, b.get(acc) + A.ld(b.get(i), b.get(j)));
    });
  });
}

inline void checksum1d(FuncBuilder& b, const Arr& A, uint32_t len,
                       uint32_t acc) {
  uint32_t i = b.local(wasm::ValType::I32);
  b.for_i32(i, ic(0), ic(static_cast<int32_t>(len)), 1, [&] {
    b.set(acc, b.get(acc) + A.ld(b.get(i)));
  });
}

/// Pages needed for a layout plus slack.
inline uint32_t pages_for(const Layout& layout) {
  uint32_t p = layout.pages() + 1;
  return p;
}

inline int32_t si(uint32_t v) { return static_cast<int32_t>(v); }

}  // namespace acctee::workloads::pb
