#include "workloads/adversarial.hpp"

#include <algorithm>

#include "workloads/builder.hpp"

namespace acctee::workloads {

namespace {
using wasm::Instr;
using wasm::Op;
using wasm::ValType;
}  // namespace

wasm::Module host_sink(uint32_t calls) {
  ModuleBuilder mb;
  mb.memory(1, 1);
  ModuleBuilder::EnvImports env = mb.import_env();
  mb.func("run", {}, {ValType::I32}, [&](FuncBuilder& fb) {
    uint32_t i = fb.local(ValType::I32);
    uint32_t acc = fb.local(ValType::I32);
    fb.set(acc, ic(0));
    fb.for_i32(i, ic(0), ic(static_cast<int32_t>(calls)), 1, [&] {
      // The call itself is the workload: no sandbox work per iteration.
      fb.set(acc, fb.get(acc) + fb.call_ex(env.input_size, {}, ValType::I32));
    });
    fb.ret(fb.get(acc));
  });
  return mb.build();
}

wasm::Module grow_churn(uint32_t grows, uint32_t pages_per_grow) {
  ModuleBuilder mb;
  mb.memory(1, 1 + grows * pages_per_grow);
  mb.func("run", {}, {ValType::I32}, [&](FuncBuilder& fb) {
    uint32_t i = fb.local(ValType::I32);
    fb.for_i32(i, ic(0), ic(static_cast<int32_t>(grows)), 1, [&] {
      fb.raw(Instr::i32c(static_cast<int32_t>(pages_per_grow)));
      fb.raw(Instr{.op = Op::MemoryGrow});
      fb.raw(Instr::simple(Op::Drop));
    });
    fb.ret(Ex(ValType::I32, {Instr{.op = Op::MemorySize}}));
  });
  return mb.build();
}

wasm::Module io_amplifier(uint32_t calls, uint32_t chunk_bytes) {
  ModuleBuilder mb;
  const uint32_t pages = static_cast<uint32_t>(
      (uint64_t{chunk_bytes} + wasm::kPageSize - 1) / wasm::kPageSize);
  mb.memory(std::max(1u, pages), std::max(1u, pages));
  ModuleBuilder::EnvImports env = mb.import_env();
  mb.func("run", {}, {ValType::I32}, [&](FuncBuilder& fb) {
    uint32_t i = fb.local(ValType::I32);
    uint32_t acc = fb.local(ValType::I32);
    fb.set(acc, ic(0));
    fb.for_i32(i, ic(0), ic(static_cast<int32_t>(calls)), 1, [&] {
      fb.set(acc, fb.get(acc) +
                      fb.call_ex(env.io_write,
                                 {ic(0), ic(static_cast<int32_t>(chunk_bytes))},
                                 ValType::I32));
    });
    fb.ret(fb.get(acc));
  });
  return mb.build();
}

wasm::Module cache_thrasher(uint32_t accesses, uint32_t footprint_pages) {
  ModuleBuilder mb;
  mb.memory(footprint_pages, footprint_pages);
  // Line-aligned LCG-random addressing defeats both cache reuse and the
  // sequential-stream prefetcher.
  const uint32_t lines = footprint_pages * (wasm::kPageSize / 64);
  mb.func("run", {}, {ValType::I32}, [&](FuncBuilder& fb) {
    uint32_t i = fb.local(ValType::I32);
    uint32_t seed = fb.local(ValType::I32);
    uint32_t acc = fb.local(ValType::I32);
    fb.set(seed, ic(12345));
    fb.set(acc, ic(0));
    fb.for_i32(i, ic(0), ic(static_cast<int32_t>(accesses)), 1, [&] {
      fb.set(seed, fb.get(seed) * ic(1103515245) + ic(12345));
      Ex addr = shl(shr_u(fb.get(seed), ic(8)) &
                        ic(static_cast<int32_t>(lines - 1)),
                    ic(6));
      fb.set(acc, fb.get(acc) ^ load_i32(addr));
    });
    fb.ret(fb.get(acc));
  });
  return mb.build();
}

wasm::Module instr_asymmetry(uint32_t reps) {
  ModuleBuilder mb;
  mb.memory(1, 1);
  mb.func("run", {}, {ValType::I32}, [&](FuncBuilder& fb) {
    uint32_t i = fb.local(ValType::I32);
    uint32_t f = fb.local(ValType::F64);
    fb.set(f, fc(1.5));
    fb.for_i32(i, ic(0), ic(static_cast<int32_t>(reps)), 1, [&] {
      // sqrt + div + mul + add: weight 4 under the unit table, an order of
      // magnitude more simulated cycles.
      fb.set(f, f64_sqrt(fb.get(f) * fb.get(f) + fc(2.0)) / fc(1.25));
    });
    fb.ret(to_i32(fb.get(f)));
  });
  return mb.build();
}

wasm::Module gap_baseline(uint32_t iterations) {
  ModuleBuilder mb;
  mb.memory(1, 1);
  mb.func("run", {}, {ValType::I32}, [&](FuncBuilder& fb) {
    uint32_t i = fb.local(ValType::I32);
    uint32_t acc = fb.local(ValType::I32);
    fb.set(acc, ic(0));
    fb.for_i32(i, ic(0), ic(static_cast<int32_t>(iterations)), 1, [&] {
      fb.set(acc, fb.get(acc) + fb.get(i));
    });
    fb.ret(fb.get(acc));
  });
  return mb.build();
}

std::vector<AdversarialCase> adversarial_suite(uint32_t scale) {
  const uint32_t s = std::max(1u, scale);
  std::vector<AdversarialCase> suite;
  suite.push_back({"baseline", gap_baseline(50000 * s), {}});
  suite.push_back({"host_sink", host_sink(20000 * s), {}});
  suite.push_back({"grow_churn", grow_churn(48 * s, 1), {}});
  suite.push_back({"io_amplifier", io_amplifier(64 * s, 8192), {}});
  // 16 MiB footprint: beats the meter's default 8 MiB L3 as well as the
  // benchmark-scaled 1 MiB hierarchy.
  suite.push_back({"cache_thrasher", cache_thrasher(50000 * s, 256), {}});
  suite.push_back({"instr_asymmetry", instr_asymmetry(30000 * s), {}});
  return suite;
}

}  // namespace acctee::workloads
