#include "workloads/builder.hpp"

#include "common/error.hpp"
#include "wasm/validator.hpp"

namespace acctee::workloads {

using wasm::Instr;
using wasm::Op;
using wasm::ValType;

namespace {

[[noreturn]] void dsl_error(const std::string& msg) {
  throw Error("workload DSL: " + msg);
}

Ex binary(Ex a, Ex b, Op i32_op, Op i64_op, Op f32_op, Op f64_op,
          const char* what) {
  if (a.type != b.type) dsl_error(std::string("operand type mismatch in ") + what);
  Op op;
  switch (a.type) {
    case ValType::I32: op = i32_op; break;
    case ValType::I64: op = i64_op; break;
    case ValType::F32: op = f32_op; break;
    case ValType::F64: op = f64_op; break;
    default: dsl_error("bad type");
  }
  if (op == Op::Unreachable) dsl_error(std::string("op unsupported for type in ") + what);
  Ex out;
  out.type = a.type;
  out.code = std::move(a.code);
  out.code.insert(out.code.end(), b.code.begin(), b.code.end());
  out.code.push_back(Instr::simple(op));
  return out;
}

Ex compare(Ex a, Ex b, Op i32_op, Op i64_op, Op f32_op, Op f64_op,
           const char* what) {
  Ex out = binary(std::move(a), std::move(b), i32_op, i64_op, f32_op, f64_op,
                  what);
  out.type = ValType::I32;
  return out;
}

Ex unary(Ex a, Op op, ValType result) {
  Ex out;
  out.type = result;
  out.code = std::move(a.code);
  out.code.push_back(Instr::simple(op));
  return out;
}

constexpr Op kNone = Op::Unreachable;

}  // namespace

Ex ic(int32_t v) { return Ex(ValType::I32, {Instr::i32c(v)}); }
Ex lc(int64_t v) { return Ex(ValType::I64, {Instr::i64c(v)}); }
Ex fc(double v) { return Ex(ValType::F64, {Instr::f64c(v)}); }
Ex fc32(float v) { return Ex(ValType::F32, {Instr::f32c(v)}); }

Ex operator+(Ex a, Ex b) {
  return binary(std::move(a), std::move(b), Op::I32Add, Op::I64Add,
                Op::F32Add, Op::F64Add, "+");
}
Ex operator-(Ex a, Ex b) {
  return binary(std::move(a), std::move(b), Op::I32Sub, Op::I64Sub,
                Op::F32Sub, Op::F64Sub, "-");
}
Ex operator*(Ex a, Ex b) {
  return binary(std::move(a), std::move(b), Op::I32Mul, Op::I64Mul,
                Op::F32Mul, Op::F64Mul, "*");
}
Ex operator/(Ex a, Ex b) {
  return binary(std::move(a), std::move(b), Op::I32DivS, Op::I64DivS,
                Op::F32Div, Op::F64Div, "/");
}
Ex operator%(Ex a, Ex b) {
  return binary(std::move(a), std::move(b), Op::I32RemS, Op::I64RemS, kNone,
                kNone, "%");
}
Ex operator&(Ex a, Ex b) {
  return binary(std::move(a), std::move(b), Op::I32And, Op::I64And, kNone,
                kNone, "&");
}
Ex operator|(Ex a, Ex b) {
  return binary(std::move(a), std::move(b), Op::I32Or, Op::I64Or, kNone,
                kNone, "|");
}
Ex operator^(Ex a, Ex b) {
  return binary(std::move(a), std::move(b), Op::I32Xor, Op::I64Xor, kNone,
                kNone, "^");
}
Ex shl(Ex a, Ex b) {
  return binary(std::move(a), std::move(b), Op::I32Shl, Op::I64Shl, kNone,
                kNone, "shl");
}
Ex shr_s(Ex a, Ex b) {
  return binary(std::move(a), std::move(b), Op::I32ShrS, Op::I64ShrS, kNone,
                kNone, "shr_s");
}
Ex shr_u(Ex a, Ex b) {
  return binary(std::move(a), std::move(b), Op::I32ShrU, Op::I64ShrU, kNone,
                kNone, "shr_u");
}

Ex lt(Ex a, Ex b) {
  return compare(std::move(a), std::move(b), Op::I32LtS, Op::I64LtS,
                 Op::F32Lt, Op::F64Lt, "lt");
}
Ex le(Ex a, Ex b) {
  return compare(std::move(a), std::move(b), Op::I32LeS, Op::I64LeS,
                 Op::F32Le, Op::F64Le, "le");
}
Ex gt(Ex a, Ex b) {
  return compare(std::move(a), std::move(b), Op::I32GtS, Op::I64GtS,
                 Op::F32Gt, Op::F64Gt, "gt");
}
Ex ge(Ex a, Ex b) {
  return compare(std::move(a), std::move(b), Op::I32GeS, Op::I64GeS,
                 Op::F32Ge, Op::F64Ge, "ge");
}
Ex eq(Ex a, Ex b) {
  return compare(std::move(a), std::move(b), Op::I32Eq, Op::I64Eq, Op::F32Eq,
                 Op::F64Eq, "eq");
}
Ex ne(Ex a, Ex b) {
  return compare(std::move(a), std::move(b), Op::I32Ne, Op::I64Ne, Op::F32Ne,
                 Op::F64Ne, "ne");
}
Ex eqz(Ex a) {
  if (a.type == ValType::I32) return unary(std::move(a), Op::I32Eqz, ValType::I32);
  if (a.type == ValType::I64) return unary(std::move(a), Op::I64Eqz, ValType::I32);
  dsl_error("eqz needs an integer");
}

Ex neg(Ex a) {
  if (a.type == ValType::F64) return unary(std::move(a), Op::F64Neg, ValType::F64);
  if (a.type == ValType::F32) return unary(std::move(a), Op::F32Neg, ValType::F32);
  dsl_error("neg needs a float");
}
Ex f64_sqrt(Ex a) { return unary(std::move(a), Op::F64Sqrt, ValType::F64); }
Ex f64_abs(Ex a) { return unary(std::move(a), Op::F64Abs, ValType::F64); }
Ex f32_sqrt(Ex a) { return unary(std::move(a), Op::F32Sqrt, ValType::F32); }

Ex select_ex(Ex a, Ex b, Ex cond) {
  if (a.type != b.type) dsl_error("select arms differ");
  if (cond.type != ValType::I32) dsl_error("select cond must be i32");
  Ex out;
  out.type = a.type;
  out.code = std::move(a.code);
  out.code.insert(out.code.end(), b.code.begin(), b.code.end());
  out.code.insert(out.code.end(), cond.code.begin(), cond.code.end());
  out.code.push_back(Instr::simple(Op::Select));
  return out;
}

Ex to_f64(Ex a) {
  switch (a.type) {
    case ValType::I32: return unary(std::move(a), Op::F64ConvertI32S, ValType::F64);
    case ValType::I64: return unary(std::move(a), Op::F64ConvertI64S, ValType::F64);
    case ValType::F32: return unary(std::move(a), Op::F64PromoteF32, ValType::F64);
    case ValType::F64: return a;
  }
  dsl_error("to_f64");
}
Ex to_f32(Ex a) {
  switch (a.type) {
    case ValType::I32: return unary(std::move(a), Op::F32ConvertI32S, ValType::F32);
    case ValType::F64: return unary(std::move(a), Op::F32DemoteF64, ValType::F32);
    case ValType::F32: return a;
    default: dsl_error("to_f32");
  }
}
Ex to_i32(Ex a) {
  switch (a.type) {
    case ValType::F64: return unary(std::move(a), Op::I32TruncF64S, ValType::I32);
    case ValType::F32: return unary(std::move(a), Op::I32TruncF32S, ValType::I32);
    case ValType::I64: return unary(std::move(a), Op::I32WrapI64, ValType::I32);
    case ValType::I32: return a;
  }
  dsl_error("to_i32");
}
Ex to_i64(Ex a) {
  if (a.type == ValType::I32) {
    return unary(std::move(a), Op::I64ExtendI32S, ValType::I64);
  }
  if (a.type == ValType::I64) return a;
  dsl_error("to_i64");
}
Ex to_i64_u(Ex a) {
  if (a.type == ValType::I32) {
    return unary(std::move(a), Op::I64ExtendI32U, ValType::I64);
  }
  dsl_error("to_i64_u");
}

namespace {
Ex load(Ex addr, Op op, ValType result, uint32_t offset) {
  if (addr.type != ValType::I32) dsl_error("address must be i32");
  Ex out;
  out.type = result;
  out.code = std::move(addr.code);
  out.code.push_back(Instr::load(op, offset));
  return out;
}
}  // namespace

Ex load_i32(Ex addr, uint32_t offset) {
  return load(std::move(addr), Op::I32Load, ValType::I32, offset);
}
Ex load_i64(Ex addr, uint32_t offset) {
  return load(std::move(addr), Op::I64Load, ValType::I64, offset);
}
Ex load_f64(Ex addr, uint32_t offset) {
  return load(std::move(addr), Op::F64Load, ValType::F64, offset);
}
Ex load_f32(Ex addr, uint32_t offset) {
  return load(std::move(addr), Op::F32Load, ValType::F32, offset);
}
Ex load_u8(Ex addr, uint32_t offset) {
  return load(std::move(addr), Op::I32Load8U, ValType::I32, offset);
}

// ---------------------------------------------------------------------------
// FuncBuilder
// ---------------------------------------------------------------------------

uint32_t FuncBuilder::local(ValType type) {
  locals_.push_back(type);
  return static_cast<uint32_t>(param_types_.size() + locals_.size() - 1);
}

Ex FuncBuilder::get(uint32_t index) const {
  ValType type = index < param_types_.size()
                     ? param_types_[index]
                     : locals_.at(index - param_types_.size());
  return Ex(type, {Instr::local_get(index)});
}

void FuncBuilder::append(Ex e) {
  current_.insert(current_.end(), e.code.begin(), e.code.end());
}

void FuncBuilder::set(uint32_t index, Ex value) {
  append(std::move(value));
  current_.push_back(Instr::local_set(index));
}

void FuncBuilder::store_i32(Ex addr, Ex value, uint32_t offset) {
  append(std::move(addr));
  append(std::move(value));
  current_.push_back(Instr::store(Op::I32Store, offset));
}
void FuncBuilder::store_i64(Ex addr, Ex value, uint32_t offset) {
  append(std::move(addr));
  append(std::move(value));
  current_.push_back(Instr::store(Op::I64Store, offset));
}
void FuncBuilder::store_f64(Ex addr, Ex value, uint32_t offset) {
  append(std::move(addr));
  append(std::move(value));
  current_.push_back(Instr::store(Op::F64Store, offset));
}
void FuncBuilder::store_f32(Ex addr, Ex value, uint32_t offset) {
  append(std::move(addr));
  append(std::move(value));
  current_.push_back(Instr::store(Op::F32Store, offset));
}
void FuncBuilder::store_u8(Ex addr, Ex value, uint32_t offset) {
  append(std::move(addr));
  append(std::move(value));
  current_.push_back(Instr::store(Op::I32Store8, offset));
}

void FuncBuilder::call(uint32_t func_index, std::initializer_list<Ex> args,
                       bool drop_result) {
  for (const Ex& a : args) append(a);
  current_.push_back(Instr::call(func_index));
  if (drop_result) current_.push_back(Instr::simple(Op::Drop));
}

Ex FuncBuilder::call_ex(uint32_t func_index, std::initializer_list<Ex> args,
                        ValType result_type) {
  Ex out;
  out.type = result_type;
  for (const Ex& a : args) {
    out.code.insert(out.code.end(), a.code.begin(), a.code.end());
  }
  out.code.push_back(Instr::call(func_index));
  return out;
}

void FuncBuilder::drop(Ex value) {
  append(std::move(value));
  current_.push_back(Instr::simple(Op::Drop));
}

void FuncBuilder::ret(Ex value) {
  append(std::move(value));
  current_.push_back(Instr::simple(Op::Return));
}

void FuncBuilder::emit(Ex statement) { append(std::move(statement)); }

void FuncBuilder::raw(Instr instr) { current_.push_back(std::move(instr)); }

void FuncBuilder::for_i32(uint32_t var, Ex start, Ex end, int32_t step,
                          const std::function<void()>& body) {
  if (step == 0) dsl_error("for_i32: step must be non-zero");
  // Constant bounds: resolve the guard at compile time (what a real
  // compiler does) — either the loop is provably empty, or the do-while
  // needs no guard, which also exposes the constant trip count to the
  // instrumentation's loop-based optimisation.
  if (start.code.size() == 1 && start.code[0].op == wasm::Op::I32Const &&
      end.code.size() == 1 && end.code[0].op == wasm::Op::I32Const) {
    int32_t s = start.code[0].as_i32();
    int32_t e = end.code[0].as_i32();
    bool runs = step > 0 ? s < e : s > e;
    if (!runs) {
      set(var, std::move(start));  // loop variable still gets initialised
      return;
    }
    do_while_i32(var, std::move(start), std::move(end), step, body);
    return;
  }
  set(var, std::move(start));
  // Guard: enter the do-while only if at least one iteration runs.
  Ex guard = step > 0 ? lt(get(var), end) : gt(get(var), end);
  append(std::move(guard));
  std::vector<Instr> saved = std::move(current_);
  current_.clear();
  {
    // loop body in canonical hoistable form
    std::vector<Instr> outer = std::move(current_);
    current_.clear();
    body();
    // induction update: get var / const step / add / tee var
    current_.push_back(Instr::local_get(var));
    current_.push_back(Instr::i32c(step));
    current_.push_back(Instr::simple(Op::I32Add));
    current_.push_back(Instr::local_tee(var));
    // condition: (var < end) or (var > end)
    Ex limit = end;
    current_.insert(current_.end(), limit.code.begin(), limit.code.end());
    current_.push_back(
        Instr::simple(step > 0 ? Op::I32LtS : Op::I32GtS));
    current_.push_back(Instr::br_if(0));
    std::vector<Instr> loop_body = std::move(current_);
    current_ = std::move(outer);
    current_.push_back(Instr::loop(wasm::BlockType{}, std::move(loop_body)));
  }
  std::vector<Instr> if_body = std::move(current_);
  current_ = std::move(saved);
  current_.push_back(Instr::if_else(wasm::BlockType{}, std::move(if_body)));
}

void FuncBuilder::do_while_i32(uint32_t var, Ex start, Ex end, int32_t step,
                               const std::function<void()>& body) {
  if (step == 0) dsl_error("do_while_i32: step must be non-zero");
  set(var, std::move(start));
  std::vector<Instr> saved = std::move(current_);
  current_.clear();
  body();
  current_.push_back(Instr::local_get(var));
  current_.push_back(Instr::i32c(step));
  current_.push_back(Instr::simple(Op::I32Add));
  current_.push_back(Instr::local_tee(var));
  Ex limit = std::move(end);
  current_.insert(current_.end(), limit.code.begin(), limit.code.end());
  current_.push_back(Instr::simple(step > 0 ? Op::I32LtS : Op::I32GtS));
  current_.push_back(Instr::br_if(0));
  std::vector<Instr> loop_body = std::move(current_);
  current_ = std::move(saved);
  current_.push_back(Instr::loop(wasm::BlockType{}, std::move(loop_body)));
}

void FuncBuilder::while_loop(const std::function<Ex()>& cond,
                             const std::function<void()>& body) {
  // block { loop { br_if-not cond -> exit; body; br loop } }
  std::vector<Instr> saved = std::move(current_);
  current_.clear();
  Ex c = cond();
  append(std::move(c));
  current_.push_back(Instr::simple(Op::I32Eqz));
  current_.push_back(Instr::br_if(1));  // exit the enclosing block
  body();
  current_.push_back(Instr::br(0));
  std::vector<Instr> loop_body = std::move(current_);
  std::vector<Instr> block_body;
  block_body.push_back(Instr::loop(wasm::BlockType{}, std::move(loop_body)));
  current_ = std::move(saved);
  current_.push_back(Instr::block(wasm::BlockType{}, std::move(block_body)));
}

void FuncBuilder::if_then(Ex cond, const std::function<void()>& then_body) {
  append(std::move(cond));
  std::vector<Instr> saved = std::move(current_);
  current_.clear();
  then_body();
  std::vector<Instr> then_code = std::move(current_);
  current_ = std::move(saved);
  current_.push_back(Instr::if_else(wasm::BlockType{}, std::move(then_code)));
}

void FuncBuilder::if_then_else(Ex cond, const std::function<void()>& then_body,
                               const std::function<void()>& else_body) {
  append(std::move(cond));
  std::vector<Instr> saved = std::move(current_);
  current_.clear();
  then_body();
  std::vector<Instr> then_code = std::move(current_);
  current_.clear();
  else_body();
  std::vector<Instr> else_code = std::move(current_);
  current_ = std::move(saved);
  current_.push_back(Instr::if_else(wasm::BlockType{}, std::move(then_code),
                                    std::move(else_code)));
}

// ---------------------------------------------------------------------------
// ModuleBuilder
// ---------------------------------------------------------------------------

ModuleBuilder& ModuleBuilder::memory(uint32_t min_pages, uint32_t max_pages) {
  module_.memory = wasm::Limits{min_pages, max_pages};
  return *this;
}

uint32_t ModuleBuilder::import_func(const std::string& module,
                                    const std::string& name,
                                    wasm::FuncType type) {
  if (!module_.functions.empty()) {
    dsl_error("imports must precede function definitions");
  }
  wasm::Import imp;
  imp.module = module;
  imp.name = name;
  imp.type_index = module_.intern_type(type);
  module_.imports.push_back(std::move(imp));
  return static_cast<uint32_t>(module_.imports.size() - 1);
}

ModuleBuilder::EnvImports ModuleBuilder::import_env() {
  using wasm::FuncType;
  EnvImports env;
  env.input_size =
      import_func("env", "input_size", FuncType{{}, {ValType::I32}});
  env.io_read = import_func(
      "env", "io_read",
      FuncType{{ValType::I32, ValType::I32}, {ValType::I32}});
  env.io_write = import_func(
      "env", "io_write",
      FuncType{{ValType::I32, ValType::I32}, {ValType::I32}});
  return env;
}

uint32_t ModuleBuilder::func(const std::string& export_name,
                             std::vector<ValType> params,
                             std::vector<ValType> results,
                             const std::function<void(FuncBuilder&)>& build) {
  wasm::Function function;
  function.type_index =
      module_.intern_type(wasm::FuncType{params, std::move(results)});
  function.name = export_name;
  FuncBuilder fb(std::move(params));
  build(fb);
  function.locals = fb.locals();
  function.body = fb.take_body();
  module_.functions.push_back(std::move(function));
  uint32_t index = module_.num_funcs() - 1;
  if (!export_name.empty()) {
    module_.exports.push_back(
        wasm::Export{export_name, wasm::ExternKind::Func, index});
  }
  return index;
}

ModuleBuilder& ModuleBuilder::data(uint32_t offset, Bytes bytes) {
  module_.data.push_back(wasm::DataSegment{offset, std::move(bytes)});
  return *this;
}

ModuleBuilder& ModuleBuilder::global_i64(bool mutable_, int64_t init,
                                         const std::string& export_name) {
  wasm::Global g;
  g.type = ValType::I64;
  g.mutable_ = mutable_;
  g.init = Instr::i64c(init);
  module_.globals.push_back(g);
  if (!export_name.empty()) {
    module_.exports.push_back(
        wasm::Export{export_name, wasm::ExternKind::Global,
                     static_cast<uint32_t>(module_.globals.size() - 1)});
  }
  return *this;
}

wasm::Module ModuleBuilder::build() {
  wasm::validate(module_);
  return std::move(module_);
}

// ---------------------------------------------------------------------------
// Arrays
// ---------------------------------------------------------------------------

Ex Arr::at(Ex i, Ex j) const {
  Ex index = i * ic(static_cast<int32_t>(cols)) + std::move(j);
  return ic(static_cast<int32_t>(base)) +
         std::move(index) * ic(static_cast<int32_t>(elem_size));
}

Ex Arr::at(Ex i) const {
  return ic(static_cast<int32_t>(base)) +
         std::move(i) * ic(static_cast<int32_t>(elem_size));
}

Ex Arr::ld(Ex i, Ex j) const {
  Ex addr = at(std::move(i), std::move(j));
  switch (elem) {
    case ValType::F64: return load_f64(std::move(addr));
    case ValType::F32: return load_f32(std::move(addr));
    case ValType::I32:
      return elem_size == 1 ? load_u8(std::move(addr))
                            : load_i32(std::move(addr));
    case ValType::I64: return load_i64(std::move(addr));
  }
  dsl_error("Arr::ld");
}

Ex Arr::ld(Ex i) const { return ld(ic(0), std::move(i)); }

Arr Layout::alloc(uint32_t rows, uint32_t cols, uint32_t elem_size,
                  ValType type) {
  Arr arr;
  arr.base = next_;
  arr.cols = cols;
  arr.elem_size = elem_size;
  arr.elem = type;
  uint64_t bytes = uint64_t{rows} * cols * elem_size;
  uint64_t end = uint64_t{next_} + bytes;
  end = (end + 63) & ~uint64_t{63};
  if (end > UINT32_MAX) dsl_error("layout exceeds 4 GiB");
  next_ = static_cast<uint32_t>(end);
  return arr;
}

Arr Layout::array_f64(uint32_t rows, uint32_t cols) {
  return alloc(rows, cols, 8, ValType::F64);
}
Arr Layout::array_f32(uint32_t rows, uint32_t cols) {
  return alloc(rows, cols, 4, ValType::F32);
}
Arr Layout::array_i32(uint32_t rows, uint32_t cols) {
  return alloc(rows, cols, 4, ValType::I32);
}
Arr Layout::array_u8(uint32_t rows, uint32_t cols) {
  return alloc(rows, cols, 1, ValType::I32);
}

}  // namespace acctee::workloads
