// Adversarial billed-vs-true gap workloads (DESIGN.md §18).
//
// Each generator builds a kernel that is *cheap on the weighted instruction
// counter* but expensive on some real resource the counter does not see —
// the workloads a rational tenant would run if billed only by AccTEE's
// counter. They drive the shadow resource meter in bench/gap_adversarial.cpp
// and the gap regression gate in CI:
//
//   host_sink        — tight loop of host calls: each `call $import` bills
//                      a handful of weight units while the provider pays the
//                      full ring-transition cost (closable with
//                      InstrumentOptions::host_call_weight),
//   grow_churn       — memory.grow in a loop: one weight unit per grow, the
//                      kernel zeroes 64 KiB per page,
//   io_amplifier     — repeated io_write of a large chunk: the per-call
//                      price never covers the per-byte host-side copy,
//   cache_thrasher   — line-aligned pseudo-random loads over a footprint
//                      far beyond the LLC: weight 1 per load, DRAM + MEE
//                      latency per access,
//   instr_asymmetry  — f64 sqrt/div kernel: weight 1 per op under the unit
//                      table, many simulated cycles per op.
//
// A control workload (`baseline`) with a well-priced integer loop is
// included so the suite also demonstrates a *small* gap where accounting is
// sound.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "wasm/ast.hpp"

namespace acctee::workloads {

/// Loop of `calls` host calls (env.input_size) doing no sandbox work.
wasm::Module host_sink(uint32_t calls);

/// `grows` × memory.grow(pages_per_grow); the module declares max pages to
/// fit. Wasm memory never shrinks, so churn = total grown bytes.
wasm::Module grow_churn(uint32_t grows, uint32_t pages_per_grow);

/// `calls` × io_write of `chunk_bytes` from the bottom of linear memory.
wasm::Module io_amplifier(uint32_t calls, uint32_t chunk_bytes);

/// `accesses` line-aligned LCG-random i32 loads over `footprint_pages`
/// (must be a power of two) of linear memory.
wasm::Module cache_thrasher(uint32_t accesses, uint32_t footprint_pages);

/// `reps` iterations of an f64 sqrt/div/mul kernel.
wasm::Module instr_asymmetry(uint32_t reps);

/// Control: a plain integer sum loop with accurate unit-weight accounting.
wasm::Module gap_baseline(uint32_t iterations);

/// One suite entry, ready to instrument and execute.
struct AdversarialCase {
  std::string name;        // workload family name (also the tenant label)
  wasm::Module module;
  Bytes input;             // I/O channel input (empty unless the kernel reads)
};

/// The whole family at a size scaled for benchmarking; `scale` multiplies
/// every iteration count (1 ≈ a few ms per workload under the interpreter).
std::vector<AdversarialCase> adversarial_suite(uint32_t scale = 1);

}  // namespace acctee::workloads
