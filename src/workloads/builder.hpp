// A small embedded DSL for emitting WebAssembly kernels.
//
// All of AccTEE's evaluation workloads (PolyBench kernels, the volunteer
// computing / pay-by-computation programs, the FaaS functions and the
// microbenchmarks) are written against this builder, which plays the role
// Emscripten plays in the paper: it compiles "C-shaped" loop nests into
// Wasm. Counted loops are emitted in the canonical do-while form
//
//     i = start
//     if (i < end) { loop { body; i += step; br_if (i < end) } }
//
// so the instrumentation's loop-based optimisation applies to straight-line
// inner loops, exactly as it does to Emscripten output.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "wasm/ast.hpp"

namespace acctee::workloads {

/// A typed expression: a sequence of instructions leaving one value of
/// `type` on the stack (or nothing, for statements built via FuncBuilder).
struct Ex {
  wasm::ValType type = wasm::ValType::I32;
  std::vector<wasm::Instr> code;

  Ex() = default;
  Ex(wasm::ValType t, std::vector<wasm::Instr> c)
      : type(t), code(std::move(c)) {}
};

// -- constants --
Ex ic(int32_t v);   // i32.const
Ex lc(int64_t v);   // i64.const
Ex fc(double v);    // f64.const
Ex fc32(float v);   // f32.const

// -- arithmetic (op chosen by operand type; both sides must match) --
Ex operator+(Ex a, Ex b);
Ex operator-(Ex a, Ex b);
Ex operator*(Ex a, Ex b);
Ex operator/(Ex a, Ex b);  // signed division for integers
Ex operator%(Ex a, Ex b);  // signed remainder (integers only)
Ex operator&(Ex a, Ex b);
Ex operator|(Ex a, Ex b);
Ex operator^(Ex a, Ex b);
Ex shl(Ex a, Ex b);
Ex shr_s(Ex a, Ex b);
Ex shr_u(Ex a, Ex b);

// -- comparisons (i32 result; signed for integers) --
Ex lt(Ex a, Ex b);
Ex le(Ex a, Ex b);
Ex gt(Ex a, Ex b);
Ex ge(Ex a, Ex b);
Ex eq(Ex a, Ex b);
Ex ne(Ex a, Ex b);
Ex eqz(Ex a);

// -- unary / math --
Ex neg(Ex a);        // floats only
Ex f64_sqrt(Ex a);
Ex f64_abs(Ex a);
Ex f32_sqrt(Ex a);
Ex select_ex(Ex a, Ex b, Ex cond);  // a if cond else b

// -- conversions --
Ex to_f64(Ex a);     // from i32 (signed) or f32
Ex to_f32(Ex a);     // from i32 (signed) or f64
Ex to_i32(Ex a);     // from f64/f32 (trunc, signed) or i64 (wrap)
Ex to_i64(Ex a);     // from i32 (signed extend)
Ex to_i64_u(Ex a);   // from i32 (zero extend)

// -- memory (addresses are i32 expressions; offset is a static immediate) --
Ex load_i32(Ex addr, uint32_t offset = 0);
Ex load_i64(Ex addr, uint32_t offset = 0);
Ex load_f64(Ex addr, uint32_t offset = 0);
Ex load_f32(Ex addr, uint32_t offset = 0);
Ex load_u8(Ex addr, uint32_t offset = 0);

/// Builds one function. Obtain from ModuleBuilder::func.
class FuncBuilder {
 public:
  /// Declares a local and returns its index (params were declared with the
  /// function signature; they occupy indices [0, num_params)).
  uint32_t local(wasm::ValType type);

  /// Expression reading a local/param.
  Ex get(uint32_t index) const;

  // -- statements --
  void set(uint32_t index, Ex value);
  void store_i32(Ex addr, Ex value, uint32_t offset = 0);
  void store_i64(Ex addr, Ex value, uint32_t offset = 0);
  void store_f64(Ex addr, Ex value, uint32_t offset = 0);
  void store_f32(Ex addr, Ex value, uint32_t offset = 0);
  void store_u8(Ex addr, Ex value, uint32_t offset = 0);
  void call(uint32_t func_index, std::initializer_list<Ex> args,
            bool drop_result = false);
  Ex call_ex(uint32_t func_index, std::initializer_list<Ex> args,
             wasm::ValType result_type);
  void drop(Ex value);
  void ret(Ex value);
  void emit(Ex statement_with_no_result);  // e.g. calls returning nothing
  void raw(wasm::Instr instr);

  /// for (var = start; var < end; var += step) body    [step > 0]
  /// for (var = start; var > end; var += step) body    [step < 0]
  /// Canonical guarded do-while emission (hoistable when body is flat).
  void for_i32(uint32_t var, Ex start, Ex end, int32_t step,
               const std::function<void()>& body);

  /// do { body; var += step; } while (var < end)  — unguarded; use when the
  /// loop is statically known to run at least once.
  void do_while_i32(uint32_t var, Ex start, Ex end, int32_t step,
                    const std::function<void()>& body);

  /// while (cond) body — general form (exit test at top, not hoistable).
  void while_loop(const std::function<Ex()>& cond,
                  const std::function<void()>& body);

  void if_then(Ex cond, const std::function<void()>& then_body);
  void if_then_else(Ex cond, const std::function<void()>& then_body,
                    const std::function<void()>& else_body);

  // Implementation detail for ModuleBuilder.
  std::vector<wasm::Instr> take_body() { return std::move(current_); }
  const std::vector<wasm::ValType>& locals() const { return locals_; }

  explicit FuncBuilder(std::vector<wasm::ValType> param_types)
      : param_types_(std::move(param_types)) {}

 private:
  void append(Ex e);

  std::vector<wasm::ValType> param_types_;
  std::vector<wasm::ValType> locals_;
  std::vector<wasm::Instr> current_;
};

/// Builds a module: memory, imports, functions, exports, data.
class ModuleBuilder {
 public:
  ModuleBuilder& memory(uint32_t min_pages, uint32_t max_pages);

  /// Declares a function import (must precede func() definitions) and
  /// returns its function index.
  uint32_t import_func(const std::string& module, const std::string& name,
                       wasm::FuncType type);

  /// Imports the full AccTEE runtime env ABI; returns indices in order
  /// {input_size, io_read, io_write}.
  struct EnvImports {
    uint32_t input_size;
    uint32_t io_read;
    uint32_t io_write;
  };
  EnvImports import_env();

  /// Defines a function: `build` receives a FuncBuilder and emits the body.
  /// Exported under `export_name` if non-empty. Returns the function index.
  uint32_t func(const std::string& export_name,
                std::vector<wasm::ValType> params,
                std::vector<wasm::ValType> results,
                const std::function<void(FuncBuilder&)>& build);

  ModuleBuilder& data(uint32_t offset, Bytes bytes);
  ModuleBuilder& global_i64(bool mutable_, int64_t init,
                            const std::string& export_name = "");

  /// Finalises and validates the module.
  wasm::Module build();

 private:
  wasm::Module module_;
};

/// Convenience: a dense 2-D array of f64/f32/i32 in linear memory.
struct Arr {
  uint32_t base = 0;     // byte offset in linear memory
  uint32_t cols = 1;     // row length (elements)
  uint32_t elem_size = 8;
  wasm::ValType elem = wasm::ValType::F64;

  /// Address of element (i, j).
  Ex at(Ex i, Ex j) const;
  /// Address of element (i) for 1-D use.
  Ex at(Ex i) const;
  /// Typed loads/stores.
  Ex ld(Ex i, Ex j) const;
  Ex ld(Ex i) const;

  /// Bytes occupied by `rows` rows.
  uint64_t bytes(uint64_t rows) const {
    return rows * cols * static_cast<uint64_t>(elem_size);
  }
};

/// Lays out consecutive arrays starting at `base`, 64-byte aligned.
class Layout {
 public:
  explicit Layout(uint32_t base = 64) : next_(base) {}

  Arr array_f64(uint32_t rows, uint32_t cols);
  Arr array_f32(uint32_t rows, uint32_t cols);
  Arr array_i32(uint32_t rows, uint32_t cols);
  Arr array_u8(uint32_t rows, uint32_t cols);

  /// Total bytes consumed so far.
  uint32_t end() const { return next_; }
  /// Wasm pages needed for the layout.
  uint32_t pages() const {
    return static_cast<uint32_t>((uint64_t{next_} + wasm::kPageSize - 1) /
                                 wasm::kPageSize);
  }

 private:
  Arr alloc(uint32_t rows, uint32_t cols, uint32_t elem_size,
            wasm::ValType type);
  uint32_t next_;
};

}  // namespace acctee::workloads
