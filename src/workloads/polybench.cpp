#include "workloads/polybench.hpp"

#include "common/error.hpp"
#include "workloads/polybench_kernels.hpp"

namespace acctee::workloads {

namespace {

uint64_t f64_2d(uint64_t arrays, uint64_t n) { return arrays * n * n * 8; }

/// Benchmark problem sizes. Chosen so that (a) dynamic instruction counts
/// stay in the low millions per kernel, and (b) the kernels that blow up
/// under SGX hardware mode in the paper's Fig. 6 have working sets beyond
/// the benchmark's scaled EPC (see bench/fig6_polybench.cpp), while the
/// rest stay EPC-resident.
std::vector<KernelFactory> make_suite() {
  std::vector<KernelFactory> suite;
  auto add = [&](std::string name, std::function<wasm::Module(uint32_t)> build,
                 uint32_t n, uint64_t footprint) {
    suite.push_back({std::move(name), std::move(build), n, footprint});
  };
  add("2mm", pb_2mm, 56, f64_2d(5, 56));
  add("3mm", pb_3mm, 52, f64_2d(7, 52));
  add("adi", pb_adi, 360, f64_2d(4, 360));
  add("atax", pb_atax, 512, f64_2d(1, 512));
  add("bicg", pb_bicg, 512, f64_2d(1, 512));
  add("cholesky", pb_cholesky, 96, f64_2d(1, 96));
  add("correlation", pb_correlation, 72, f64_2d(2, 72));
  add("covariance", pb_covariance, 72, f64_2d(2, 72));
  add("deriche", pb_deriche, 512, 4ull * 512 * 512 * 4);
  add("doitgen", pb_doitgen, 24, uint64_t{24} * 24 * 24 * 8);
  add("durbin", pb_durbin, 800, 3ull * 800 * 8);
  add("fdtd-2d", pb_fdtd_2d, 480, f64_2d(3, 480));
  add("gemm", pb_gemm, 72, f64_2d(3, 72));
  add("gemver", pb_gemver, 512, f64_2d(1, 512));
  add("gesummv", pb_gesummv, 512, f64_2d(2, 512));
  add("gramschmidt", pb_gramschmidt, 64, f64_2d(3, 64));
  add("heat-3d", pb_heat_3d, 64, 2ull * 64 * 64 * 64 * 8);
  add("jacobi-1d", pb_jacobi_1d, 400000, 2ull * 400000 * 8);
  add("jacobi-2d", pb_jacobi_2d, 512, f64_2d(2, 512));
  add("lu", pb_lu, 80, f64_2d(1, 80));
  add("ludcmp", pb_ludcmp, 80, f64_2d(1, 80));
  add("mvt", pb_mvt, 512, f64_2d(1, 512));
  add("nussinov", pb_nussinov, 180, uint64_t{180} * 180 * 4);
  add("seidel-2d", pb_seidel_2d, 400, f64_2d(1, 400));
  add("symm", pb_symm, 72, f64_2d(3, 72));
  add("syr2k", pb_syr2k, 64, f64_2d(3, 64));
  add("syrk", pb_syrk, 72, f64_2d(2, 72));
  add("trisolv", pb_trisolv, 800, f64_2d(1, 800));
  add("trmm", pb_trmm, 72, f64_2d(2, 72));
  return suite;
}

}  // namespace

const std::vector<KernelFactory>& polybench() {
  static const auto* suite = new std::vector<KernelFactory>(make_suite());
  return *suite;
}

wasm::Module build_polybench(const std::string& name, uint32_t n) {
  for (const auto& kernel : polybench()) {
    if (kernel.name == name) return kernel.build(n);
  }
  throw Error("unknown PolyBench kernel: " + name);
}

}  // namespace acctee::workloads
