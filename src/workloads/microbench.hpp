// Microbenchmark module generators for the instruction-weight experiments.
//
// Fig. 7: per-instruction cost — for each of the 127 non-memory value
// instructions (consts, comparisons, arithmetic, conversions), a module
// that executes the instruction `reps` times in an unrolled loop, plus a
// matching baseline module without the instruction, so cycles-per-
// instruction falls out of the difference.
//
// Fig. 8: memory-access cost — modules performing `accesses` load or store
// operations of a given value type over a given linear-memory footprint,
// with either a linear or a (LCG-)random address pattern.
#pragma once

#include <vector>

#include "wasm/ast.hpp"

namespace acctee::workloads {

/// The 127 instructions measured in Fig. 7: every uniform-signature opcode
/// except loads/stores and memory.size/grow.
std::vector<wasm::Op> measurable_instructions();

struct InstrBenchPair {
  wasm::Module with_op;   // executes the target op `reps` times
  wasm::Module baseline;  // identical except the target op is absent
  uint32_t reps;
};

/// Builds the measurement pair for `op`. `reps` is rounded up to a multiple
/// of the unroll factor.
InstrBenchPair instruction_microbench(wasm::Op op, uint32_t reps);

enum class AccessPattern { Linear, Random };

/// Fig. 8 generator: `accesses` loads (or stores) of `type` spread over
/// `footprint_bytes` of linear memory.
wasm::Module memory_access_bench(wasm::ValType type, bool is_store,
                                 AccessPattern pattern,
                                 uint64_t footprint_bytes, uint32_t accesses);

/// Call-dominated workload for the optimising middle-end (DESIGN.md §19):
/// `run: [i32 scale] -> [i64]` loops `scale * 256` times calling a tiny
/// straight-line leaf mixer — the shape the counter-coalescing pass inlines
/// behind a region guard. The loop bound is data-dependent, so the loop
/// itself is never const-trip folded; every speedup comes from the call.
wasm::Module leaf_call_bench();

}  // namespace acctee::workloads
