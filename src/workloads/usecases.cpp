#include "workloads/usecases.hpp"

#include "workloads/builder.hpp"

namespace acctee::workloads {

using wasm::ValType;

namespace {
/// LCG step over an i64 local: state = state * 6364136223846793005 +
/// 1442695040888963407 (Knuth's MMIX constants).
void lcg_step(FuncBuilder& b, uint32_t state) {
  b.set(state, b.get(state) * lc(6364136223846793005LL) +
                   lc(1442695040888963407LL));
}

/// Positive i32 in [0, bound) extracted from the LCG state's high bits.
Ex lcg_i32(FuncBuilder& b, uint32_t state, int32_t bound) {
  return (to_i32(shr_u(b.get(state), lc(33))) & ic(0x7fffffff)) % ic(bound);
}

/// f64 in [0, 1) from the LCG state.
Ex lcg_f64(FuncBuilder& b, uint32_t state) {
  return to_f64(to_i32(shr_u(b.get(state), lc(33))) & ic(0x3fffffff)) /
         fc(1073741824.0);
}
}  // namespace

// ---------------------------------------------------------------------------
// MSieve: trial division + Pollard's rho
// ---------------------------------------------------------------------------

namespace {
/// Primes in [20011, 46337): factors of the generated semiprimes. Their
/// products (~2^29..2^31) defeat the trial-division fast path, so Pollard's
/// rho does the real work — like MSieve's post-sieve factorisations.
std::vector<uint32_t> semiprime_factor_table() {
  std::vector<uint32_t> primes;
  for (uint32_t candidate = 20011; primes.size() < 256; candidate += 2) {
    bool prime = true;
    for (uint32_t d = 3; d * d <= candidate; d += 2) {
      if (candidate % d == 0) {
        prime = false;
        break;
      }
    }
    if (prime) primes.push_back(candidate);
  }
  return primes;
}
}  // namespace

wasm::Module usecase_msieve() {
  ModuleBuilder mb;
  mb.memory(1, 1);
  // Prime table as a data segment at offset 0 (256 x u32).
  {
    Bytes table;
    for (uint32_t p : semiprime_factor_table()) append_u32le(table, p);
    mb.data(0, std::move(table));
  }

  // gcd(a, b) with a, b >= 0 — Euclid's algorithm.
  uint32_t f_gcd = mb.func(
      "", {ValType::I64, ValType::I64}, {ValType::I64}, [&](FuncBuilder& b) {
        uint32_t t = b.local(ValType::I64);
        b.while_loop([&] { return ne(b.get(1), lc(0)); },
                     [&] {
                       b.set(t, b.get(0) % b.get(1));
                       b.set(0, b.get(1));
                       b.set(1, b.get(t));
                     });
        b.emit(b.get(0));
      });

  // pollard_rho(n, c) -> a non-trivial factor of n, or n itself.
  uint32_t f_rho = mb.func(
      "", {ValType::I64, ValType::I64}, {ValType::I64}, [&](FuncBuilder& b) {
        uint32_t x = b.local(ValType::I64);
        uint32_t y = b.local(ValType::I64);
        uint32_t d = b.local(ValType::I64);
        uint32_t diff = b.local(ValType::I64);
        auto f = [&](Ex v) {
          // (v*v + c) mod n — safe in i64 for n < 2^31.
          Ex vv = v;
          return (std::move(vv) * std::move(v) + b.get(1)) % b.get(0);
        };
        b.set(x, lc(2));
        b.set(y, lc(2));
        b.set(d, lc(1));
        b.while_loop(
            [&] { return eq(b.get(d), lc(1)); },
            [&] {
              b.set(x, f(b.get(x)));
              b.set(y, f(b.get(y)));
              b.set(y, f(b.get(y)));
              b.set(diff, b.get(x) - b.get(y));
              b.set(diff, select_ex(b.get(diff) * lc(-1), b.get(diff),
                                    lt(b.get(diff), lc(0))));
              b.set(d, b.call_ex(f_gcd, {b.get(diff), b.get(0)},
                                 ValType::I64));
            });
        b.emit(b.get(d));
      });

  // smallest_factor(n): trial division by 2..1000; returns 0 if none found.
  uint32_t f_trial = mb.func(
      "", {ValType::I64}, {ValType::I64}, [&](FuncBuilder& b) {
        uint32_t p = b.local(ValType::I64);
        uint32_t found = b.local(ValType::I64);
        b.set(p, lc(2));
        b.set(found, lc(0));
        b.while_loop(
            [&] {
              return eq(b.get(found), lc(0)) &
                     le(b.get(p) * b.get(p), b.get(0)) & lt(b.get(p), lc(1000));
            },
            [&] {
              b.if_then(eq(b.get(0) % b.get(p), lc(0)),
                        [&] { b.set(found, b.get(p)); });
              b.set(p, b.get(p) + lc(1));
            });
        b.emit(b.get(found));
      });

  mb.func("run", {ValType::I32}, {ValType::I64}, [&](FuncBuilder& b) {
    uint32_t t = b.local(ValType::I32);
    uint32_t rng = b.local(ValType::I64);
    uint32_t n = b.local(ValType::I64);
    uint32_t factor = b.local(ValType::I64);
    uint32_t checksum = b.local(ValType::I64);
    b.set(rng, lc(0x9e3779b97f4a7c15LL));
    b.for_i32(t, ic(0), b.get(0), 1, [&] {
      // Semiprime n = primes[a] * primes[b]; both factors exceed the trial
      // bound, so rho does the factoring.
      lcg_step(b, rng);
      uint32_t pa = b.local(ValType::I64);
      b.set(pa, to_i64_u(load_i32(lcg_i32(b, rng, 256) * ic(4))));
      lcg_step(b, rng);
      b.set(n, b.get(pa) * to_i64_u(load_i32(lcg_i32(b, rng, 256) * ic(4))));
      b.set(factor, b.call_ex(f_trial, {b.get(n)}, ValType::I64));
      b.if_then(eq(b.get(factor), lc(0)), [&] {
        b.set(factor,
              b.call_ex(f_rho, {b.get(n), lc(1) + to_i64(b.get(t) % ic(7))},
                        ValType::I64));
      });
      b.set(checksum, b.get(checksum) + b.get(factor) + b.get(n));
    });
    b.emit(b.get(checksum));
  });

  return mb.build();
}

// ---------------------------------------------------------------------------
// PC algorithm: correlation skeleton + order-0/1 independence pruning
// ---------------------------------------------------------------------------

wasm::Module usecase_pc() {
  // scale = number of variables m; samples s = 2m. Layout sized for the
  // maximum supported m.
  constexpr uint32_t kMaxVars = 96;
  Layout layout;
  Arr X = layout.array_f64(2 * kMaxVars, kMaxVars);      // samples x vars
  Arr mean = layout.array_f64(1, kMaxVars);
  Arr sd = layout.array_f64(1, kMaxVars);
  Arr corr = layout.array_f64(kMaxVars, kMaxVars);
  Arr adj = layout.array_i32(kMaxVars, kMaxVars);
  ModuleBuilder mb;
  uint32_t pages = layout.pages() + 1;
  mb.memory(pages, pages);

  mb.func("run", {ValType::I32}, {ValType::I64}, [&](FuncBuilder& b) {
    uint32_t m = b.local(ValType::I32);
    uint32_t s = b.local(ValType::I32);
    uint32_t i = b.local(ValType::I32);
    uint32_t j = b.local(ValType::I32);
    uint32_t k = b.local(ValType::I32);
    uint32_t rng = b.local(ValType::I64);
    uint32_t acc = b.local(ValType::F64);
    uint32_t edges = b.local(ValType::I64);

    b.set(m, select_ex(ic(static_cast<int32_t>(kMaxVars)), b.get(0),
                       gt(b.get(0), ic(static_cast<int32_t>(kMaxVars)))));
    b.set(s, b.get(m) * ic(2));
    b.set(rng, lc(0x243f6a8885a308d3LL));

    // Generate correlated data: X[i][j] = u + 0.5 * X[i][j-1].
    b.for_i32(i, ic(0), b.get(s), 1, [&] {
      b.for_i32(j, ic(0), b.get(m), 1, [&] {
        lcg_step(b, rng);
        b.set(acc, lcg_f64(b, rng));
        b.if_then(gt(b.get(j), ic(0)), [&] {
          b.set(acc, b.get(acc) +
                         fc(0.5) * X.ld(b.get(i), b.get(j) - ic(1)));
        });
        b.store_f64(X.at(b.get(i), b.get(j)), b.get(acc));
      });
    });

    // Means and standard deviations.
    b.for_i32(j, ic(0), b.get(m), 1, [&] {
      b.set(acc, fc(0.0));
      b.for_i32(i, ic(0), b.get(s), 1, [&] {
        b.set(acc, b.get(acc) + X.ld(b.get(i), b.get(j)));
      });
      b.store_f64(mean.at(b.get(j)), b.get(acc) / to_f64(b.get(s)));
      b.set(acc, fc(0.0));
      b.for_i32(i, ic(0), b.get(s), 1, [&] {
        Ex c1 = X.ld(b.get(i), b.get(j)) - mean.ld(b.get(j));
        Ex c2 = X.ld(b.get(i), b.get(j)) - mean.ld(b.get(j));
        b.set(acc, b.get(acc) + std::move(c1) * std::move(c2));
      });
      b.store_f64(sd.at(b.get(j)),
                  f64_sqrt(b.get(acc) / to_f64(b.get(s)) + fc(1e-9)));
    });

    // Correlation matrix.
    b.for_i32(i, ic(0), b.get(m), 1, [&] {
      b.for_i32(j, ic(0), b.get(m), 1, [&] {
        b.set(acc, fc(0.0));
        b.for_i32(k, ic(0), b.get(s), 1, [&] {
          b.set(acc,
                b.get(acc) + (X.ld(b.get(k), b.get(i)) - mean.ld(b.get(i))) *
                                 (X.ld(b.get(k), b.get(j)) - mean.ld(b.get(j))));
        });
        b.store_f64(corr.at(b.get(i), b.get(j)),
                    b.get(acc) / to_f64(b.get(s)) /
                        (sd.ld(b.get(i)) * sd.ld(b.get(j))));
      });
    });

    // Order-0: keep edges with |corr| > 0.1.
    b.for_i32(i, ic(0), b.get(m), 1, [&] {
      b.for_i32(j, ic(0), b.get(m), 1, [&] {
        Ex strong = gt(f64_abs(corr.ld(b.get(i), b.get(j))), fc(0.1)) &
                    ne(b.get(i), b.get(j));
        b.store_i32(adj.at(b.get(i), b.get(j)), std::move(strong));
      });
    });

    // Order-1: remove edge (i,j) if some neighbour k separates them:
    // |r_ij.k| < 0.1 where r_ij.k is the first-order partial correlation.
    uint32_t pc_num = b.local(ValType::F64);
    uint32_t pc_den = b.local(ValType::F64);
    b.for_i32(i, ic(0), b.get(m), 1, [&] {
      b.for_i32(j, ic(0), b.get(m), 1, [&] {
        b.if_then(ne(adj.ld(b.get(i), b.get(j)), ic(0)), [&] {
          b.for_i32(k, ic(0), b.get(m), 1, [&] {
            b.if_then(
                ne(adj.ld(b.get(i), b.get(k)), ic(0)) & ne(b.get(k), b.get(j)) &
                    ne(b.get(k), b.get(i)),
                [&] {
                  b.set(pc_num,
                        corr.ld(b.get(i), b.get(j)) -
                            corr.ld(b.get(i), b.get(k)) *
                                corr.ld(b.get(j), b.get(k)));
                  b.set(pc_den,
                        f64_sqrt(
                            (fc(1.0) - corr.ld(b.get(i), b.get(k)) *
                                           corr.ld(b.get(i), b.get(k))) *
                                (fc(1.0) - corr.ld(b.get(j), b.get(k)) *
                                               corr.ld(b.get(j), b.get(k))) +
                            fc(1e-9)));
                  b.if_then(
                      lt(f64_abs(b.get(pc_num) / b.get(pc_den)), fc(0.1)),
                      [&] { b.store_i32(adj.at(b.get(i), b.get(j)), ic(0)); });
                });
          });
        });
      });
    });

    // Checksum: surviving edge count.
    b.set(edges, lc(0));
    b.for_i32(i, ic(0), b.get(m), 1, [&] {
      b.for_i32(j, ic(0), b.get(m), 1, [&] {
        b.set(edges, b.get(edges) + to_i64(adj.ld(b.get(i), b.get(j))));
      });
    });
    b.emit(b.get(edges));
  });

  return mb.build();
}

// ---------------------------------------------------------------------------
// SubsetSum: exact bitset dynamic programming
// ---------------------------------------------------------------------------

wasm::Module usecase_subsetsum() {
  constexpr uint32_t kItems = 24;
  constexpr uint32_t kMaxWeight = 200;
  constexpr uint32_t kMaxSum = kItems * kMaxWeight;
  constexpr uint32_t kWords = kMaxSum / 32 + 2;
  Layout layout;
  Arr dp = layout.array_i32(1, kWords);
  Arr weights = layout.array_i32(1, kItems);
  ModuleBuilder mb;
  mb.memory(layout.pages() + 1, layout.pages() + 1);

  mb.func("run", {ValType::I32}, {ValType::I64}, [&](FuncBuilder& b) {
    uint32_t inst = b.local(ValType::I32);
    uint32_t i = b.local(ValType::I32);
    uint32_t w = b.local(ValType::I32);
    uint32_t ws = b.local(ValType::I32);   // word shift
    uint32_t bs = b.local(ValType::I32);   // bit shift
    uint32_t total = b.local(ValType::I32);
    uint32_t target = b.local(ValType::I32);
    uint32_t words = b.local(ValType::I32);
    uint32_t rng = b.local(ValType::I64);
    uint32_t checksum = b.local(ValType::I64);
    uint32_t carry = b.local(ValType::I32);

    b.set(rng, lc(0x13198a2e03707344LL));
    b.for_i32(inst, ic(0), b.get(0), 1, [&] {
      // Generate instance.
      b.set(total, ic(0));
      b.for_i32(i, ic(0), ic(static_cast<int32_t>(kItems)), 1, [&] {
        lcg_step(b, rng);
        b.store_i32(weights.at(b.get(i)),
                    lcg_i32(b, rng, static_cast<int32_t>(kMaxWeight)) + ic(1));
        b.set(total, b.get(total) + weights.ld(b.get(i)));
      });
      b.set(target, b.get(total) / ic(2));
      b.set(words, b.get(target) / ic(32) + ic(2));
      // dp = {1} (only the empty sum).
      b.for_i32(i, ic(0), b.get(words), 1, [&] {
        b.store_i32(dp.at(b.get(i)), ic(0));
      });
      b.store_i32(dp.at(ic(0)), ic(1));
      // Shift-or per item.
      uint32_t item = b.local(ValType::I32);
      b.for_i32(item, ic(0), ic(static_cast<int32_t>(kItems)), 1, [&] {
        b.set(w, weights.ld(b.get(item)));
        b.set(ws, b.get(w) / ic(32));
        b.set(bs, b.get(w) % ic(32));
        b.if_then_else(
            eq(b.get(bs), ic(0)),
            [&] {
              b.for_i32(i, b.get(words) - ic(1), b.get(ws) - ic(1), -1, [&] {
                b.store_i32(dp.at(b.get(i)),
                            dp.ld(b.get(i)) | dp.ld(b.get(i) - b.get(ws)));
              });
            },
            [&] {
              b.for_i32(i, b.get(words) - ic(1), b.get(ws), -1, [&] {
                b.set(carry,
                      shr_u(dp.ld(b.get(i) - b.get(ws) - ic(1)),
                            ic(32) - b.get(bs)));
                b.store_i32(dp.at(b.get(i)),
                            dp.ld(b.get(i)) |
                                shl(dp.ld(b.get(i) - b.get(ws)), b.get(bs)) |
                                b.get(carry));
              });
              // i == ws boundary word has no predecessor word.
              b.store_i32(dp.at(b.get(ws)),
                          dp.ld(b.get(ws)) |
                              shl(dp.ld(ic(0)), b.get(bs)));
            });
      });
      // Count achievable sums in [target/2, target] via popcount-by-bit.
      uint32_t sum_idx = b.local(ValType::I32);
      b.for_i32(sum_idx, b.get(target) / ic(2), b.get(target) + ic(1), 1, [&] {
        Ex bit = shr_u(dp.ld(b.get(sum_idx) / ic(32)),
                       b.get(sum_idx) % ic(32)) &
                 ic(1);
        b.set(checksum, b.get(checksum) + to_i64(std::move(bit)));
      });
    });
    b.emit(b.get(checksum));
  });

  return mb.build();
}

// ---------------------------------------------------------------------------
// Darknet: small CNN image classifier (f32)
// ---------------------------------------------------------------------------

wasm::Module usecase_darknet() {
  constexpr uint32_t kImg = 28;       // input image side
  constexpr uint32_t kConvOut = 26;   // valid 3x3 conv output side
  constexpr uint32_t kPool = 13;      // after 2x2 maxpool
  constexpr uint32_t kFilters = 8;
  constexpr uint32_t kClasses = 10;
  constexpr uint32_t kDense = kPool * kPool * kFilters;  // 1352

  Layout layout;
  Arr img = layout.array_f32(kImg, kImg);
  Arr convw = layout.array_f32(kFilters, 9);           // 3x3 kernels
  Arr convb = layout.array_f32(1, kFilters);
  Arr feat = layout.array_f32(kFilters, kConvOut* kConvOut);
  Arr pooled = layout.array_f32(1, kDense);
  Arr densew = layout.array_f32(kClasses, kDense);
  Arr logits = layout.array_f32(1, kClasses);
  ModuleBuilder mb;
  mb.memory(layout.pages() + 1, layout.pages() + 1);

  mb.func("run", {ValType::I32}, {ValType::I64}, [&](FuncBuilder& b) {
    uint32_t image = b.local(ValType::I32);
    uint32_t i = b.local(ValType::I32);
    uint32_t j = b.local(ValType::I32);
    uint32_t f = b.local(ValType::I32);
    uint32_t ky = b.local(ValType::I32);
    uint32_t kx = b.local(ValType::I32);
    uint32_t c = b.local(ValType::I32);
    uint32_t rng = b.local(ValType::I64);
    uint32_t accf = b.local(ValType::F32);
    uint32_t best = b.local(ValType::F32);
    uint32_t best_idx = b.local(ValType::I32);
    uint32_t checksum = b.local(ValType::I64);

    auto lcg_f32 = [&]() {
      lcg_step(b, rng);
      return to_f32(lcg_f64(b, rng)) - fc32(0.5f);
    };

    b.set(rng, lc(0xa4093822299f31d0LL));
    // Weights (generated once).
    b.for_i32(f, ic(0), ic(static_cast<int32_t>(kFilters)), 1, [&] {
      b.for_i32(i, ic(0), ic(9), 1, [&] {
        b.store_f32(convw.at(b.get(f), b.get(i)), lcg_f32());
      });
      b.store_f32(convb.at(b.get(f)), lcg_f32());
    });
    b.for_i32(c, ic(0), ic(static_cast<int32_t>(kClasses)), 1, [&] {
      b.for_i32(i, ic(0), ic(static_cast<int32_t>(kDense)), 1, [&] {
        b.store_f32(densew.at(b.get(c), b.get(i)), lcg_f32());
      });
    });

    b.for_i32(image, ic(0), b.get(0), 1, [&] {
      // Input image.
      b.for_i32(i, ic(0), ic(static_cast<int32_t>(kImg)), 1, [&] {
        b.for_i32(j, ic(0), ic(static_cast<int32_t>(kImg)), 1, [&] {
          b.store_f32(img.at(b.get(i), b.get(j)), lcg_f32());
        });
      });
      // Convolution + ReLU.
      b.for_i32(f, ic(0), ic(static_cast<int32_t>(kFilters)), 1, [&] {
        b.for_i32(i, ic(0), ic(static_cast<int32_t>(kConvOut)), 1, [&] {
          b.for_i32(j, ic(0), ic(static_cast<int32_t>(kConvOut)), 1, [&] {
            b.set(accf, convb.ld(b.get(f)));
            b.for_i32(ky, ic(0), ic(3), 1, [&] {
              b.for_i32(kx, ic(0), ic(3), 1, [&] {
                b.set(accf,
                      b.get(accf) +
                          img.ld(b.get(i) + b.get(ky), b.get(j) + b.get(kx)) *
                              convw.ld(b.get(f), b.get(ky) * ic(3) + b.get(kx)));
              });
            });
            // ReLU.
            b.set(accf, select_ex(b.get(accf), fc32(0.0f),
                                  gt(b.get(accf), fc32(0.0f))));
            b.store_f32(
                feat.at(b.get(f),
                        b.get(i) * ic(static_cast<int32_t>(kConvOut)) + b.get(j)),
                b.get(accf));
          });
        });
      });
      // 2x2 maxpool.
      b.for_i32(f, ic(0), ic(static_cast<int32_t>(kFilters)), 1, [&] {
        b.for_i32(i, ic(0), ic(static_cast<int32_t>(kPool)), 1, [&] {
          b.for_i32(j, ic(0), ic(static_cast<int32_t>(kPool)), 1, [&] {
            auto pixel = [&](int dy, int dx) {
              return feat.ld(
                  b.get(f),
                  (b.get(i) * ic(2) + ic(dy)) *
                          ic(static_cast<int32_t>(kConvOut)) +
                      b.get(j) * ic(2) + ic(dx));
            };
            Ex m01 = select_ex(pixel(0, 0), pixel(0, 1),
                               gt(pixel(0, 0), pixel(0, 1)));
            Ex m23 = select_ex(pixel(1, 0), pixel(1, 1),
                               gt(pixel(1, 0), pixel(1, 1)));
            Ex m01_copy = m01;
            Ex m23_copy = m23;
            b.set(accf,
                  select_ex(std::move(m01_copy), std::move(m23_copy),
                            gt(std::move(m01), std::move(m23))));
            b.store_f32(
                pooled.at((b.get(f) * ic(static_cast<int32_t>(kPool)) +
                           b.get(i)) *
                              ic(static_cast<int32_t>(kPool)) +
                          b.get(j)),
                b.get(accf));
          });
        });
      });
      // Dense layer + argmax.
      b.set(best, fc32(-1e30f));
      b.set(best_idx, ic(0));
      b.for_i32(c, ic(0), ic(static_cast<int32_t>(kClasses)), 1, [&] {
        b.set(accf, fc32(0.0f));
        b.for_i32(i, ic(0), ic(static_cast<int32_t>(kDense)), 1, [&] {
          b.set(accf, b.get(accf) +
                          pooled.ld(b.get(i)) * densew.ld(b.get(c), b.get(i)));
        });
        b.store_f32(logits.at(b.get(c)), b.get(accf));
        b.if_then(gt(b.get(accf), b.get(best)), [&] {
          b.set(best, b.get(accf));
          b.set(best_idx, b.get(c));
        });
      });
      b.set(checksum, b.get(checksum) + to_i64(b.get(best_idx)) + lc(1));
    });
    b.emit(b.get(checksum));
  });

  return mb.build();
}

const std::vector<UseCase>& usecases() {
  static const auto* list = new std::vector<UseCase>{
      {"MSieve", usecase_msieve, 40},
      {"PC", usecase_pc, 48},
      {"SubsetSum", usecase_subsetsum, 60},
      {"Darknet", usecase_darknet, 3},
  };
  return *list;
}

}  // namespace acctee::workloads
