// The PolyBench/C 4.2.1 suite (paper §5.1, Fig. 6), hand-ported to Wasm via
// the workload builder DSL.
//
// Each kernel preserves the original's loop structure, data-dependence
// pattern and operation mix (the properties that determine instrumentation
// overhead and cache/EPC behaviour), parameterised by a problem size `n`.
// Every kernel module exports `run: [] -> [f64]`, which initialises its
// arrays PolyBench-style, executes the kernel, and returns a checksum of
// the output (so results can be cross-checked between instrumented and
// uninstrumented runs).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "wasm/ast.hpp"

namespace acctee::workloads {

struct KernelFactory {
  std::string name;
  /// Builds the kernel module for problem size n.
  std::function<wasm::Module(uint32_t n)> build;
  /// Problem size used by the Fig. 6 benchmark.
  uint32_t bench_n;
  /// Approximate linear-memory footprint at bench_n (bytes) — used to pick
  /// which kernels exceed the (scaled) EPC in the SGX-hardware experiment.
  uint64_t footprint_bytes;
};

/// All 29 kernels evaluated in the paper's Fig. 6.
const std::vector<KernelFactory>& polybench();

/// Builds one kernel by name; throws Error for unknown names.
wasm::Module build_polybench(const std::string& name, uint32_t n);

}  // namespace acctee::workloads
