// Weight-table calibration (paper §3.7 + Fig. 7 workflow).
//
// Measures cycles-per-instruction for every measurable opcode with the
// microbenchmark generator and derives the WeightTable that AccTEE ships as
// part of the attested execution environment. Deterministic: the same
// simulated platform always yields the same table (and hence the same
// attested table hash).
#pragma once

#include <array>

#include "instrument/weights.hpp"
#include "interp/cost.hpp"

namespace acctee::workloads {

struct CalibrationResult {
  instrument::WeightTable table;
  /// Raw measured cycles per instruction (0 for unmeasured opcodes).
  std::array<double, wasm::kNumOps> cycles{};
};

/// Runs the per-instruction microbenchmarks (`reps` repetitions each,
/// baseline-subtracted) and builds the weight table.
CalibrationResult calibrate_weights(uint32_t reps = 10000);

}  // namespace acctee::workloads
