// FaaS functions for the Fig. 9 experiment (paper §5.3).
//
//   * echo   — replies with its input (I/O-dominated worst case).
//   * resize — scales a raw RGB image to 64x64 with bilinear filtering
//              (compute-heavy case). The paper used JPEG via zupply; raw
//              RGB preserves the compute/IO profile without a JPEG codec
//              (documented substitution, see DESIGN.md).
//
// Both modules use the AccTEE runtime env ABI (env.input_size / io_read /
// io_write) and export `run: [] -> [i32]` returning the output byte count.
//
// Input format for resize: u32 width, u32 height (little endian), then
// width*height*3 bytes of RGB data. Output: 64*64*3 bytes.
#pragma once

#include "common/bytes.hpp"
#include "wasm/ast.hpp"

namespace acctee::workloads {

wasm::Module faas_echo();
wasm::Module faas_resize();

/// Deterministic raw RGB test image with the 8-byte header, side x side px.
Bytes make_test_image(uint32_t side, uint64_t seed);

constexpr uint32_t kResizeOutputSide = 64;

}  // namespace acctee::workloads
