// PolyBench linear-system solvers and decompositions, ported to Wasm.
//
// Initial data is chosen diagonally dominant / well-conditioned so the
// factorisations are numerically stable (PolyBench does the same via its
// "make positive semi-definite" initialisers); the loop nests and
// dependence patterns match the originals.
#include "workloads/polybench_common.hpp"
#include "workloads/polybench_kernels.hpp"

namespace acctee::workloads {

using pb::si;
using wasm::ValType;

namespace {
wasm::Module kernel_module(const Layout& layout,
                           const std::function<void(FuncBuilder&)>& body) {
  ModuleBuilder mb;
  uint32_t pages = pb::pages_for(layout);
  mb.memory(pages, pages);
  mb.func("run", {}, {ValType::F64}, body);
  return mb.build();
}

/// Diagonally dominant symmetric initialiser: small off-diagonal entries,
/// heavy diagonal.
Ex dd_init(Ex i, Ex j, uint32_t n) {
  Ex off = pb::init_val(std::move(i), std::move(j), 1, 1, 1, si(n)) * fc(0.1);
  return off;
}
}  // namespace

wasm::Module pb_cholesky(uint32_t n) {
  Layout layout;
  Arr A = layout.array_f64(n, n);
  return kernel_module(layout, [&](FuncBuilder& b) {
    // A = 0.1 * small(i,j) symmetric + n on the diagonal (SPD).
    {
      uint32_t i = b.local(ValType::I32);
      uint32_t j = b.local(ValType::I32);
      b.for_i32(i, ic(0), ic(si(n)), 1, [&] {
        b.for_i32(j, ic(0), b.get(i) + ic(1), 1, [&] {
          Ex v = dd_init(b.get(i) + b.get(j), b.get(i) * b.get(j), n);
          b.store_f64(A.at(b.get(i), b.get(j)), v);
          b.store_f64(A.at(b.get(j), b.get(i)), v);
        });
        b.store_f64(A.at(b.get(i), b.get(i)), fc(static_cast<double>(n)));
      });
    }

    uint32_t i = b.local(ValType::I32);
    uint32_t j = b.local(ValType::I32);
    uint32_t k = b.local(ValType::I32);
    b.for_i32(i, ic(0), ic(si(n)), 1, [&] {
      b.for_i32(j, ic(0), b.get(i), 1, [&] {
        b.for_i32(k, ic(0), b.get(j), 1, [&] {
          b.store_f64(A.at(b.get(i), b.get(j)),
                      A.ld(b.get(i), b.get(j)) -
                          A.ld(b.get(i), b.get(k)) * A.ld(b.get(j), b.get(k)));
        });
        b.store_f64(A.at(b.get(i), b.get(j)),
                    A.ld(b.get(i), b.get(j)) / A.ld(b.get(j), b.get(j)));
      });
      b.for_i32(k, ic(0), b.get(i), 1, [&] {
        b.store_f64(A.at(b.get(i), b.get(i)),
                    A.ld(b.get(i), b.get(i)) -
                        A.ld(b.get(i), b.get(k)) * A.ld(b.get(i), b.get(k)));
      });
      b.store_f64(A.at(b.get(i), b.get(i)),
                  f64_sqrt(A.ld(b.get(i), b.get(i))));
    });

    uint32_t acc = b.local(ValType::F64);
    pb::checksum2d(b, A, n, n, acc);
    b.emit(b.get(acc));
  });
}

wasm::Module pb_lu(uint32_t n) {
  Layout layout;
  Arr A = layout.array_f64(n, n);
  return kernel_module(layout, [&](FuncBuilder& b) {
    {
      uint32_t i = b.local(ValType::I32);
      uint32_t j = b.local(ValType::I32);
      b.for_i32(i, ic(0), ic(si(n)), 1, [&] {
        b.for_i32(j, ic(0), ic(si(n)), 1, [&] {
          Ex diag_boost =
              select_ex(fc(static_cast<double>(n)), fc(0.0),
                        eq(b.get(i), b.get(j)));
          b.store_f64(A.at(b.get(i), b.get(j)),
                      dd_init(b.get(i), b.get(j), n) + std::move(diag_boost));
        });
      });
    }

    uint32_t i = b.local(ValType::I32);
    uint32_t j = b.local(ValType::I32);
    uint32_t k = b.local(ValType::I32);
    b.for_i32(i, ic(0), ic(si(n)), 1, [&] {
      b.for_i32(j, ic(0), b.get(i), 1, [&] {
        b.for_i32(k, ic(0), b.get(j), 1, [&] {
          b.store_f64(A.at(b.get(i), b.get(j)),
                      A.ld(b.get(i), b.get(j)) -
                          A.ld(b.get(i), b.get(k)) * A.ld(b.get(k), b.get(j)));
        });
        b.store_f64(A.at(b.get(i), b.get(j)),
                    A.ld(b.get(i), b.get(j)) / A.ld(b.get(j), b.get(j)));
      });
      b.for_i32(j, b.get(i), ic(si(n)), 1, [&] {
        b.for_i32(k, ic(0), b.get(i), 1, [&] {
          b.store_f64(A.at(b.get(i), b.get(j)),
                      A.ld(b.get(i), b.get(j)) -
                          A.ld(b.get(i), b.get(k)) * A.ld(b.get(k), b.get(j)));
        });
      });
    });

    uint32_t acc = b.local(ValType::F64);
    pb::checksum2d(b, A, n, n, acc);
    b.emit(b.get(acc));
  });
}

wasm::Module pb_ludcmp(uint32_t n) {
  Layout layout;
  Arr A = layout.array_f64(n, n);
  Arr bv = layout.array_f64(1, n);
  Arr x = layout.array_f64(1, n);
  Arr y = layout.array_f64(1, n);
  return kernel_module(layout, [&](FuncBuilder& b) {
    {
      uint32_t i = b.local(ValType::I32);
      uint32_t j = b.local(ValType::I32);
      b.for_i32(i, ic(0), ic(si(n)), 1, [&] {
        b.for_i32(j, ic(0), ic(si(n)), 1, [&] {
          Ex diag_boost =
              select_ex(fc(static_cast<double>(n)), fc(0.0),
                        eq(b.get(i), b.get(j)));
          b.store_f64(A.at(b.get(i), b.get(j)),
                      dd_init(b.get(i), b.get(j), n) + std::move(diag_boost));
        });
      });
      pb::init1d(b, bv, n, [&](Ex idx) {
        return (to_f64(std::move(idx)) + fc(1.0)) / fc(static_cast<double>(n)) /
               fc(2.0);
      });
    }

    uint32_t i = b.local(ValType::I32);
    uint32_t j = b.local(ValType::I32);
    uint32_t k = b.local(ValType::I32);
    uint32_t w = b.local(ValType::F64);
    // LU decomposition with an explicit accumulator (PolyBench style).
    b.for_i32(i, ic(0), ic(si(n)), 1, [&] {
      b.for_i32(j, ic(0), b.get(i), 1, [&] {
        b.set(w, A.ld(b.get(i), b.get(j)));
        b.for_i32(k, ic(0), b.get(j), 1, [&] {
          b.set(w, b.get(w) -
                       A.ld(b.get(i), b.get(k)) * A.ld(b.get(k), b.get(j)));
        });
        b.store_f64(A.at(b.get(i), b.get(j)),
                    b.get(w) / A.ld(b.get(j), b.get(j)));
      });
      b.for_i32(j, b.get(i), ic(si(n)), 1, [&] {
        b.set(w, A.ld(b.get(i), b.get(j)));
        b.for_i32(k, ic(0), b.get(i), 1, [&] {
          b.set(w, b.get(w) -
                       A.ld(b.get(i), b.get(k)) * A.ld(b.get(k), b.get(j)));
        });
        b.store_f64(A.at(b.get(i), b.get(j)), b.get(w));
      });
    });
    // Forward substitution.
    b.for_i32(i, ic(0), ic(si(n)), 1, [&] {
      b.set(w, bv.ld(b.get(i)));
      b.for_i32(j, ic(0), b.get(i), 1, [&] {
        b.set(w, b.get(w) - A.ld(b.get(i), b.get(j)) * y.ld(b.get(j)));
      });
      b.store_f64(y.at(b.get(i)), b.get(w));
    });
    // Backward substitution.
    b.for_i32(i, ic(si(n) - 1), ic(-1), -1, [&] {
      b.set(w, y.ld(b.get(i)));
      b.for_i32(j, b.get(i) + ic(1), ic(si(n)), 1, [&] {
        b.set(w, b.get(w) - A.ld(b.get(i), b.get(j)) * x.ld(b.get(j)));
      });
      b.store_f64(x.at(b.get(i)), b.get(w) / A.ld(b.get(i), b.get(i)));
    });

    uint32_t acc = b.local(ValType::F64);
    pb::checksum1d(b, x, n, acc);
    b.emit(b.get(acc));
  });
}

wasm::Module pb_trisolv(uint32_t n) {
  Layout layout;
  Arr L = layout.array_f64(n, n);
  Arr x = layout.array_f64(1, n);
  Arr bv = layout.array_f64(1, n);
  return kernel_module(layout, [&](FuncBuilder& b) {
    {
      uint32_t i = b.local(ValType::I32);
      uint32_t j = b.local(ValType::I32);
      b.for_i32(i, ic(0), ic(si(n)), 1, [&] {
        b.for_i32(j, ic(0), b.get(i) + ic(1), 1, [&] {
          b.store_f64(L.at(b.get(i), b.get(j)),
                      dd_init(b.get(i), b.get(j), n));
        });
        b.store_f64(L.at(b.get(i), b.get(i)), fc(static_cast<double>(n)));
      });
      pb::init1d(b, bv, n, [&](Ex idx) { return to_f64(std::move(idx)); });
    }

    uint32_t i = b.local(ValType::I32);
    uint32_t j = b.local(ValType::I32);
    b.for_i32(i, ic(0), ic(si(n)), 1, [&] {
      b.store_f64(x.at(b.get(i)), bv.ld(b.get(i)));
      b.for_i32(j, ic(0), b.get(i), 1, [&] {
        b.store_f64(x.at(b.get(i)),
                    x.ld(b.get(i)) - L.ld(b.get(i), b.get(j)) * x.ld(b.get(j)));
      });
      b.store_f64(x.at(b.get(i)), x.ld(b.get(i)) / L.ld(b.get(i), b.get(i)));
    });

    uint32_t acc = b.local(ValType::F64);
    pb::checksum1d(b, x, n, acc);
    b.emit(b.get(acc));
  });
}

wasm::Module pb_durbin(uint32_t n) {
  Layout layout;
  Arr r = layout.array_f64(1, n);
  Arr y = layout.array_f64(1, n);
  Arr z = layout.array_f64(1, n);
  return kernel_module(layout, [&](FuncBuilder& b) {
    // r[i] = 0.3^(i+1): a valid, stable autocorrelation-like sequence.
    {
      uint32_t i = b.local(ValType::I32);
      uint32_t v = b.local(ValType::F64);
      b.set(v, fc(1.0));
      b.for_i32(i, ic(0), ic(si(n)), 1, [&] {
        b.set(v, b.get(v) * fc(0.3));
        b.store_f64(r.at(b.get(i)), b.get(v));
      });
    }

    uint32_t k = b.local(ValType::I32);
    uint32_t i = b.local(ValType::I32);
    uint32_t alpha = b.local(ValType::F64);
    uint32_t beta = b.local(ValType::F64);
    uint32_t sum = b.local(ValType::F64);
    b.store_f64(y.at(ic(0)), neg(r.ld(ic(0))));
    b.set(beta, fc(1.0));
    b.set(alpha, neg(r.ld(ic(0))));
    b.for_i32(k, ic(1), ic(si(n)), 1, [&] {
      b.set(beta, (fc(1.0) - b.get(alpha) * b.get(alpha)) * b.get(beta));
      b.set(sum, fc(0.0));
      b.for_i32(i, ic(0), b.get(k), 1, [&] {
        b.set(sum, b.get(sum) +
                       r.ld(b.get(k) - b.get(i) - ic(1)) * y.ld(b.get(i)));
      });
      b.set(alpha, neg(r.ld(b.get(k)) + b.get(sum)) / b.get(beta));
      b.for_i32(i, ic(0), b.get(k), 1, [&] {
        b.store_f64(z.at(b.get(i)),
                    y.ld(b.get(i)) +
                        b.get(alpha) * y.ld(b.get(k) - b.get(i) - ic(1)));
      });
      b.for_i32(i, ic(0), b.get(k), 1, [&] {
        b.store_f64(y.at(b.get(i)), z.ld(b.get(i)));
      });
      b.store_f64(y.at(b.get(k)), b.get(alpha));
    });

    uint32_t acc = b.local(ValType::F64);
    pb::checksum1d(b, y, n, acc);
    b.emit(b.get(acc));
  });
}

wasm::Module pb_gramschmidt(uint32_t n) {
  Layout layout;
  Arr A = layout.array_f64(n, n);
  Arr R = layout.array_f64(n, n);
  Arr Q = layout.array_f64(n, n);
  return kernel_module(layout, [&](FuncBuilder& b) {
    pb::init2d(b, A, n, n, [&](Ex i, Ex j) {
      // Identity boost keeps columns independent.
      Ex boost = select_ex(fc(1.0), fc(0.0), eq(i, j));
      return pb::init_val(std::move(i), std::move(j), 1, 1, 1, si(n)) * fc(0.1) +
             std::move(boost);
    });

    uint32_t i = b.local(ValType::I32);
    uint32_t j = b.local(ValType::I32);
    uint32_t k = b.local(ValType::I32);
    uint32_t nrm = b.local(ValType::F64);
    b.for_i32(k, ic(0), ic(si(n)), 1, [&] {
      b.set(nrm, fc(0.0));
      b.for_i32(i, ic(0), ic(si(n)), 1, [&] {
        b.set(nrm, b.get(nrm) + A.ld(b.get(i), b.get(k)) *
                                    A.ld(b.get(i), b.get(k)));
      });
      b.store_f64(R.at(b.get(k), b.get(k)), f64_sqrt(b.get(nrm)));
      b.for_i32(i, ic(0), ic(si(n)), 1, [&] {
        b.store_f64(Q.at(b.get(i), b.get(k)),
                    A.ld(b.get(i), b.get(k)) / R.ld(b.get(k), b.get(k)));
      });
      b.for_i32(j, b.get(k) + ic(1), ic(si(n)), 1, [&] {
        b.store_f64(R.at(b.get(k), b.get(j)), fc(0.0));
        b.for_i32(i, ic(0), ic(si(n)), 1, [&] {
          b.store_f64(R.at(b.get(k), b.get(j)),
                      R.ld(b.get(k), b.get(j)) +
                          Q.ld(b.get(i), b.get(k)) * A.ld(b.get(i), b.get(j)));
        });
        b.for_i32(i, ic(0), ic(si(n)), 1, [&] {
          b.store_f64(A.at(b.get(i), b.get(j)),
                      A.ld(b.get(i), b.get(j)) -
                          Q.ld(b.get(i), b.get(k)) * R.ld(b.get(k), b.get(j)));
        });
      });
    });

    uint32_t acc = b.local(ValType::F64);
    pb::checksum2d(b, R, n, n, acc);
    pb::checksum2d(b, Q, n, n, acc);
    b.emit(b.get(acc));
  });
}

}  // namespace acctee::workloads
