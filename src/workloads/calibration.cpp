#include "workloads/calibration.hpp"

#include "interp/instance.hpp"
#include "workloads/microbench.hpp"

namespace acctee::workloads {

CalibrationResult calibrate_weights(uint32_t reps) {
  CalibrationResult result;
  interp::Instance::Options opts;
  opts.cache_model = false;  // non-memory instructions only
  for (wasm::Op op : measurable_instructions()) {
    InstrBenchPair pair = instruction_microbench(op, reps);
    interp::Instance with(std::move(pair.with_op), {}, opts);
    with.invoke("run");
    interp::Instance base(std::move(pair.baseline), {}, opts);
    base.invoke("run");
    result.cycles[static_cast<size_t>(op)] =
        static_cast<double>(with.stats().cycles - base.stats().cycles) /
        pair.reps;
  }
  result.table = instrument::WeightTable::from_measurements(result.cycles);
  return result;
}

}  // namespace acctee::workloads
