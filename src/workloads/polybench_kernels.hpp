// Declarations of the individual PolyBench kernel builders (internal).
#pragma once

#include "wasm/ast.hpp"

namespace acctee::workloads {

// linear algebra / BLAS (polybench_blas.cpp)
wasm::Module pb_gemm(uint32_t n);
wasm::Module pb_gemver(uint32_t n);
wasm::Module pb_gesummv(uint32_t n);
wasm::Module pb_symm(uint32_t n);
wasm::Module pb_syr2k(uint32_t n);
wasm::Module pb_syrk(uint32_t n);
wasm::Module pb_trmm(uint32_t n);
wasm::Module pb_2mm(uint32_t n);
wasm::Module pb_3mm(uint32_t n);
wasm::Module pb_atax(uint32_t n);
wasm::Module pb_bicg(uint32_t n);
wasm::Module pb_doitgen(uint32_t n);
wasm::Module pb_mvt(uint32_t n);

// solvers (polybench_solvers.cpp)
wasm::Module pb_cholesky(uint32_t n);
wasm::Module pb_durbin(uint32_t n);
wasm::Module pb_gramschmidt(uint32_t n);
wasm::Module pb_lu(uint32_t n);
wasm::Module pb_ludcmp(uint32_t n);
wasm::Module pb_trisolv(uint32_t n);

// stencils (polybench_stencils.cpp)
wasm::Module pb_adi(uint32_t n);
wasm::Module pb_fdtd_2d(uint32_t n);
wasm::Module pb_heat_3d(uint32_t n);
wasm::Module pb_jacobi_1d(uint32_t n);
wasm::Module pb_jacobi_2d(uint32_t n);
wasm::Module pb_seidel_2d(uint32_t n);

// data mining / medley (polybench_medley.cpp)
wasm::Module pb_correlation(uint32_t n);
wasm::Module pb_covariance(uint32_t n);
wasm::Module pb_deriche(uint32_t n);
wasm::Module pb_nussinov(uint32_t n);

}  // namespace acctee::workloads
