#include "workloads/faas_functions.hpp"

#include "common/rng.hpp"
#include "workloads/builder.hpp"

namespace acctee::workloads {

using wasm::ValType;

wasm::Module faas_echo() {
  ModuleBuilder mb;
  auto env = mb.import_env();
  mb.memory(56, 96);  // 1024x1024x3 inputs (~3.1 MB) fit in the buffer

  mb.func("run", {}, {ValType::I32}, [&](FuncBuilder& b) {
    uint32_t n = b.local(ValType::I32);
    uint32_t done = b.local(ValType::I32);
    uint32_t chunk = b.local(ValType::I32);
    b.set(n, b.call_ex(env.input_size, {}, ValType::I32));
    // Read everything to offset 0, then write it back, in 64 KiB chunks.
    b.set(done, ic(0));
    b.while_loop([&] { return lt(b.get(done), b.get(n)); },
                 [&] {
                   b.set(chunk, b.call_ex(env.io_read,
                                          {b.get(done), ic(65536)},
                                          ValType::I32));
                   b.set(done, b.get(done) + b.get(chunk));
                 });
    b.set(done, ic(0));
    b.while_loop([&] { return lt(b.get(done), b.get(n)); },
                 [&] {
                   Ex remaining = b.get(n) - b.get(done);
                   Ex chunk_len = select_ex(ic(65536), remaining,
                                            gt(b.get(n) - b.get(done),
                                               ic(65536)));
                   b.set(chunk, b.call_ex(env.io_write,
                                          {b.get(done), std::move(chunk_len)},
                                          ValType::I32));
                   b.set(done, b.get(done) + b.get(chunk));
                 });
    b.emit(b.get(n));
  });
  return mb.build();
}

wasm::Module faas_resize() {
  ModuleBuilder mb;
  auto env = mb.import_env();
  // Input buffer at 1 MiB mark, output at 0: out needs 64*64*3 = 12 KiB.
  constexpr uint32_t kOut = 64;         // output buffer offset
  constexpr uint32_t kIn = 1 << 20;     // input buffer offset
  constexpr int32_t kSide = static_cast<int32_t>(kResizeOutputSide);
  mb.memory(80, 96);  // 80 pages ≈ 5 MB: fits 1024x1024x3 inputs

  mb.func("run", {}, {ValType::I32}, [&](FuncBuilder& b) {
    uint32_t n = b.local(ValType::I32);
    uint32_t done = b.local(ValType::I32);
    uint32_t w = b.local(ValType::I32);
    uint32_t h = b.local(ValType::I32);
    uint32_t ox = b.local(ValType::I32);
    uint32_t oy = b.local(ValType::I32);
    uint32_t ch = b.local(ValType::I32);
    uint32_t sx = b.local(ValType::I32);   // source x, 16.16 fixed point
    uint32_t sy = b.local(ValType::I32);
    uint32_t x0 = b.local(ValType::I32);
    uint32_t y0 = b.local(ValType::I32);
    uint32_t fx = b.local(ValType::I32);   // fractional parts (0..65535)
    uint32_t fy = b.local(ValType::I32);
    uint32_t p00 = b.local(ValType::I32);
    uint32_t p01 = b.local(ValType::I32);
    uint32_t p10 = b.local(ValType::I32);
    uint32_t p11 = b.local(ValType::I32);
    uint32_t top = b.local(ValType::I32);
    uint32_t bot = b.local(ValType::I32);

    // Read the full input.
    b.set(n, b.call_ex(env.input_size, {}, ValType::I32));
    b.set(done, ic(0));
    b.while_loop([&] { return lt(b.get(done), b.get(n)); },
                 [&] {
                   b.set(done,
                         b.get(done) +
                             b.call_ex(env.io_read,
                                       {ic(kIn) + b.get(done), ic(65536)},
                                       ValType::I32));
                 });
    b.set(w, load_i32(ic(kIn)));
    b.set(h, load_i32(ic(kIn), 4));

    // "Decode" pass: one full sweep over the input pixels (the raw-RGB
    // analogue of the JPEG decode the paper's resize performs) — keeps the
    // compute cost proportional to the input size.
    uint32_t luma = b.local(ValType::I32);
    uint32_t px = b.local(ValType::I32);
    b.set(luma, ic(0));
    b.for_i32(px, ic(0), b.get(w) * b.get(h), 1, [&] {
      Ex base = ic(kIn + 8) + b.get(px) * ic(3);
      Ex r = load_u8(base);
      Ex g = load_u8(ic(kIn + 8) + b.get(px) * ic(3), 1);
      Ex bl = load_u8(ic(kIn + 8) + b.get(px) * ic(3), 2);
      b.set(luma, b.get(luma) +
                      (std::move(r) * ic(77) + std::move(g) * ic(150) +
                       std::move(bl) * ic(29)));
    });
    // Park the luminance in scratch memory so the decode pass has an
    // observable effect (the sandbox does not dead-code-eliminate, but the
    // workload should be honest work regardless).
    b.store_i32(ic(32), b.get(luma));

    // Bilinear resample to kSide x kSide. Scale factors in 16.16 fixed point.
    uint32_t xstep = b.local(ValType::I32);
    uint32_t ystep = b.local(ValType::I32);
    b.set(xstep, to_i32(to_i64(b.get(w) - ic(1)) * lc(65536) /
                        to_i64(ic(kSide - 1))));
    b.set(ystep, to_i32(to_i64(b.get(h) - ic(1)) * lc(65536) /
                        to_i64(ic(kSide - 1))));

    auto src_pixel = [&](Ex x, Ex y, Ex c) {
      // kIn + 8 + (y*w + x)*3 + c
      return load_u8(ic(kIn + 8) +
                     (std::move(y) * b.get(w) + std::move(x)) * ic(3) +
                     std::move(c));
    };

    b.for_i32(oy, ic(0), ic(kSide), 1, [&] {
      b.set(sy, b.get(oy) * b.get(ystep));
      b.set(y0, shr_u(b.get(sy), ic(16)));
      b.set(fy, b.get(sy) & ic(0xffff));
      b.for_i32(ox, ic(0), ic(kSide), 1, [&] {
        b.set(sx, b.get(ox) * b.get(xstep));
        b.set(x0, shr_u(b.get(sx), ic(16)));
        b.set(fx, b.get(sx) & ic(0xffff));
        b.for_i32(ch, ic(0), ic(3), 1, [&] {
          b.set(p00, src_pixel(b.get(x0), b.get(y0), b.get(ch)));
          b.set(p01, src_pixel(b.get(x0) + ic(1), b.get(y0), b.get(ch)));
          b.set(p10, src_pixel(b.get(x0), b.get(y0) + ic(1), b.get(ch)));
          b.set(p11, src_pixel(b.get(x0) + ic(1), b.get(y0) + ic(1), b.get(ch)));
          // top = p00 + (p01-p00)*fx/65536, bot likewise, out = lerp by fy.
          b.set(top, b.get(p00) +
                         shr_s((b.get(p01) - b.get(p00)) * b.get(fx), ic(16)));
          b.set(bot, b.get(p10) +
                         shr_s((b.get(p11) - b.get(p10)) * b.get(fx), ic(16)));
          b.store_u8(ic(kOut) +
                         (b.get(oy) * ic(kSide) + b.get(ox)) * ic(3) +
                         b.get(ch),
                     b.get(top) +
                         shr_s((b.get(bot) - b.get(top)) * b.get(fy), ic(16)));
        });
      });
    });

    constexpr int32_t out_len = kSide * kSide * 3;
    b.call(env.io_write, {ic(kOut), ic(out_len)}, /*drop_result=*/true);
    b.emit(ic(out_len));
  });
  return mb.build();
}

Bytes make_test_image(uint32_t side, uint64_t seed) {
  Bytes image;
  append_u32le(image, side);
  append_u32le(image, side);
  Xoshiro256 rng(seed);
  image.reserve(8 + static_cast<size_t>(side) * side * 3);
  for (uint32_t i = 0; i < side * side * 3; ++i) {
    image.push_back(static_cast<uint8_t>(rng.next()));
  }
  return image;
}

}  // namespace acctee::workloads
