#include "workloads/microbench.hpp"

#include "common/error.hpp"
#include "workloads/builder.hpp"

namespace acctee::workloads {

using wasm::Op;
using wasm::ValType;

namespace {

constexpr uint32_t kUnroll = 16;

ValType sig_type(char c) {
  switch (c) {
    case 'i': return ValType::I32;
    case 'l': return ValType::I64;
    case 'f': return ValType::F32;
    case 'd': return ValType::F64;
  }
  throw Error("bad sig char");
}

/// Trap-free operand constants. The second integer operand is non-zero and
/// small (divisions), floats are in-range for every trunc conversion.
wasm::Instr operand(ValType type, int position) {
  switch (type) {
    case ValType::I32: return wasm::Instr::i32c(position == 0 ? 7 : 3);
    case ValType::I64: return wasm::Instr::i64c(position == 0 ? 9 : 4);
    case ValType::F32:
      return wasm::Instr::f32c(position == 0 ? 2.5f : 1.25f);
    case ValType::F64:
      return wasm::Instr::f64c(position == 0 ? 3.5 : 1.75);
  }
  throw Error("bad operand type");
}

/// Builds a module whose "run" executes `payload` (one unrolled repetition
/// emitted `kUnroll` times) inside a counted loop of `iterations`.
wasm::Module looped_module(uint32_t iterations,
                           const std::function<void(FuncBuilder&)>& payload) {
  ModuleBuilder mb;
  mb.func("run", {}, {ValType::I32}, [&](FuncBuilder& b) {
    uint32_t i = b.local(ValType::I32);
    b.for_i32(i, ic(0), ic(static_cast<int32_t>(iterations)), 1, [&] {
      for (uint32_t u = 0; u < kUnroll; ++u) payload(b);
    });
    b.emit(ic(0));
  });
  return mb.build();
}

}  // namespace

std::vector<Op> measurable_instructions() {
  std::vector<Op> ops;
  for (size_t i = 0; i < wasm::kNumOps; ++i) {
    Op op = static_cast<Op>(i);
    const wasm::OpInfo& info = wasm::op_info(op);
    if (info.sig == "*") continue;                    // control/variable ops
    if (wasm::is_memory_access(op)) continue;         // Fig. 8 territory
    if (op == Op::MemorySize || op == Op::MemoryGrow) continue;
    if (op == Op::Nop) continue;                      // no value semantics
    ops.push_back(op);
  }
  return ops;
}

InstrBenchPair instruction_microbench(Op op, uint32_t reps) {
  const wasm::OpInfo& info = wasm::op_info(op);
  if (info.sig == "*" || wasm::is_memory_access(op)) {
    throw Error("instruction_microbench: op not measurable");
  }
  size_t colon = info.sig.find(':');
  uint32_t iterations = (reps + kUnroll - 1) / kUnroll;

  InstrBenchPair pair;
  pair.reps = iterations * kUnroll;
  pair.with_op = looped_module(iterations, [&](FuncBuilder& b) {
    for (size_t p = 0; p < colon; ++p) {
      b.raw(operand(sig_type(info.sig[p]), static_cast<int>(p)));
    }
    b.raw(wasm::Instr::simple(op));
    for (size_t r = colon + 1; r < info.sig.size(); ++r) {
      b.raw(wasm::Instr::simple(Op::Drop));
    }
  });
  // Baseline: the same loop with no payload — the difference is the cost of
  // (operands + op + drop), i.e. the op cost plus a small constant overhead,
  // exactly the "low benchmarking overhead" the paper reports for Fig. 7.
  pair.baseline = looped_module(iterations, [](FuncBuilder&) {});
  return pair;
}

wasm::Module memory_access_bench(ValType type, bool is_store,
                                 AccessPattern pattern,
                                 uint64_t footprint_bytes, uint32_t accesses) {
  if ((footprint_bytes & (footprint_bytes - 1)) != 0 || footprint_bytes == 0) {
    throw Error("memory_access_bench: footprint must be a power of two");
  }
  uint32_t elem = (type == ValType::I32 || type == ValType::F32) ? 4 : 8;
  uint32_t pages = static_cast<uint32_t>(
      (footprint_bytes + wasm::kPageSize - 1) / wasm::kPageSize);
  int32_t mask = static_cast<int32_t>(footprint_bytes - 1) &
                 ~static_cast<int32_t>(elem - 1);

  ModuleBuilder mb;
  mb.memory(pages, pages);
  constexpr uint32_t kMemUnroll = 8;
  uint32_t iterations = (accesses + kMemUnroll - 1) / kMemUnroll;

  mb.func("run", {}, {ValType::I32}, [&](FuncBuilder& b) {
    uint32_t i = b.local(ValType::I32);
    uint32_t addr = b.local(ValType::I32);
    uint32_t state = b.local(ValType::I32);
    b.set(state, ic(12345));
    b.set(addr, ic(0));
    b.for_i32(i, ic(0), ic(static_cast<int32_t>(iterations)), 1, [&] {
      for (uint32_t u = 0; u < kMemUnroll; ++u) {
        if (pattern == AccessPattern::Linear) {
          b.set(addr, (b.get(addr) + ic(static_cast<int32_t>(elem))) &
                          ic(mask));
        } else {
          // LCG address scramble (Numerical Recipes constants).
          b.set(state, b.get(state) * ic(1664525) + ic(1013904223));
          b.set(addr, b.get(state) & ic(mask));
        }
        if (is_store) {
          switch (type) {
            case ValType::I32: b.store_i32(b.get(addr), ic(42)); break;
            case ValType::I64: b.store_i64(b.get(addr), lc(42)); break;
            case ValType::F32: b.store_f32(b.get(addr), fc32(4.2f)); break;
            case ValType::F64: b.store_f64(b.get(addr), fc(4.2)); break;
          }
        } else {
          switch (type) {
            case ValType::I32: b.drop(load_i32(b.get(addr))); break;
            case ValType::I64: b.drop(load_i64(b.get(addr))); break;
            case ValType::F32: b.drop(load_f32(b.get(addr))); break;
            case ValType::F64: b.drop(load_f64(b.get(addr))); break;
          }
        }
      }
    });
    b.emit(ic(0));
  });
  return mb.build();
}

wasm::Module leaf_call_bench() {
  ModuleBuilder mb;
  // The leaf: a straight-line integer mixer with an implicit return, so its
  // flat form is plain ops + one counter window + a synthetic return — the
  // exact shape match_coalesce_callee admits.
  const uint32_t leaf =
      mb.func("", {ValType::I32}, {ValType::I32}, [](FuncBuilder& b) {
        Ex x = b.get(0);
        b.emit((x * ic(-1640531527)) ^
               (shr_u(b.get(0), ic(15)) + ic(0x9e37)));
      });
  mb.func("run", {ValType::I32}, {ValType::I64}, [&](FuncBuilder& b) {
    const uint32_t i = b.local(ValType::I32);
    const uint32_t sum = b.local(ValType::I64);
    b.set(sum, lc(0));
    // Data-dependent bound: the loop never const-trip folds, so the whole
    // instrumented speedup comes from coalescing the call.
    b.for_i32(i, ic(0), b.get(0) * ic(256), 1, [&] {
      b.set(sum, b.get(sum) ^
                     to_i64_u(b.call_ex(leaf, {b.get(i)}, ValType::I32)));
    });
    b.ret(b.get(sum));
  });
  return mb.build();
}

}  // namespace acctee::workloads
