// Use-case workloads from the paper's §5.3 evaluation, ported to Wasm:
//
//   * msieve     — integer factorisation (NFS@Home's MSieve stand-in):
//                  trial division + Pollard's rho over a batch of
//                  deterministically generated 31-bit semiprimes.
//   * pc         — the PC causal-discovery algorithm (gene@Home's pc-boinc
//                  stand-in): correlation matrix + order-0/order-1
//                  conditional-independence edge pruning.
//   * subsetsum  — SubsetSum@Home stand-in: exact bitset dynamic
//                  programming over random instances, counting achievable
//                  sums.
//   * darknet    — pay-by-computation image classification (Darknet
//                  reference-model stand-in): a small f32 CNN (3x3 conv,
//                  ReLU, 2x2 maxpool, dense, argmax) over generated images.
//
// Each module exports `run: [i32 scale] -> [i64 checksum]`; `scale` controls
// the amount of work (numbers factored / variables / items / images).
// All data is generated in-module from fixed LCG seeds, so runs are
// deterministic and the counter comparisons in Fig. 10 are exact.
#pragma once

#include "wasm/ast.hpp"

namespace acctee::workloads {

wasm::Module usecase_msieve();
wasm::Module usecase_pc();
wasm::Module usecase_subsetsum();
wasm::Module usecase_darknet();

struct UseCase {
  std::string name;
  wasm::Module (*build)();
  int32_t bench_scale;  // scale used by the Fig. 10 benchmark
};

/// The four Fig. 10 workloads: MSieve, PC, SubsetSum, Darknet.
const std::vector<UseCase>& usecases();

}  // namespace acctee::workloads
