#include "crypto/lamport.hpp"
#include <algorithm>

#include <stdexcept>

#include "crypto/hmac.hpp"

namespace acctee::crypto {

Digest LamportPublicKey::fingerprint() const {
  Sha256 ctx;
  for (const auto& h : hashes) ctx.update(BytesView(h.data(), h.size()));
  return ctx.finish();
}

Bytes LamportPublicKey::serialize() const {
  Bytes out;
  out.reserve(2 * kLamportSlots * 32);
  for (const auto& h : hashes) append(out, BytesView(h.data(), h.size()));
  return out;
}

LamportPublicKey LamportPublicKey::deserialize(BytesView data) {
  if (data.size() != 2 * kLamportSlots * 32) {
    throw std::invalid_argument("LamportPublicKey: bad size");
  }
  LamportPublicKey pub;
  for (size_t i = 0; i < 2 * kLamportSlots; ++i) {
    std::copy_n(data.begin() + i * 32, 32, pub.hashes[i].begin());
  }
  return pub;
}

Bytes LamportSignature::serialize() const {
  Bytes out;
  out.reserve(kLamportSlots * 32);
  for (const auto& r : revealed) append(out, BytesView(r.data(), r.size()));
  return out;
}

LamportSignature LamportSignature::deserialize(BytesView data) {
  if (data.size() != kLamportSlots * 32) {
    throw std::invalid_argument("LamportSignature: bad size");
  }
  LamportSignature sig;
  for (size_t i = 0; i < kLamportSlots; ++i) {
    std::copy_n(data.begin() + i * 32, 32, sig.revealed[i].begin());
  }
  return sig;
}

LamportKeyPair LamportKeyPair::from_seed(BytesView seed) {
  LamportKeyPair kp;
  for (size_t i = 0; i < 2 * kLamportSlots; ++i) {
    // Preimage_i = HMAC(seed, "lamport" || i): one PRF call per slot.
    Bytes label = to_bytes("lamport-slot");
    append_u32le(label, static_cast<uint32_t>(i));
    Digest pre = hmac_sha256(seed, label);
    std::copy(pre.begin(), pre.end(), kp.priv.preimages[i].begin());
    kp.pub.hashes[i] = sha256(BytesView(pre.data(), pre.size()));
  }
  return kp;
}

LamportSignature lamport_sign(const LamportPrivateKey& priv, BytesView message) {
  Digest md = sha256(message);
  LamportSignature sig;
  for (size_t bit = 0; bit < kLamportSlots; ++bit) {
    int value = (md[bit / 8] >> (7 - bit % 8)) & 1;
    sig.revealed[bit] = priv.preimages[2 * bit + value];
  }
  return sig;
}

bool lamport_verify(const LamportPublicKey& pub, BytesView message,
                    const LamportSignature& sig) {
  Digest md = sha256(message);
  for (size_t bit = 0; bit < kLamportSlots; ++bit) {
    int value = (md[bit / 8] >> (7 - bit % 8)) & 1;
    Digest h = sha256(BytesView(sig.revealed[bit].data(), 32));
    if (h != pub.hashes[2 * bit + value]) return false;
  }
  return true;
}

}  // namespace acctee::crypto
