// SHA-256 (FIPS 180-4), implemented from scratch.
//
// Used for enclave measurements, module hashes, evidence binding and as the
// hash underlying HMAC and Lamport signatures. Verified against NIST test
// vectors in tests/crypto_test.cpp.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.hpp"

namespace acctee::crypto {

/// A 32-byte SHA-256 digest.
using Digest = std::array<uint8_t, 32>;

/// Incremental SHA-256 context.
class Sha256 {
 public:
  Sha256();

  /// Absorbs more input. May be called repeatedly.
  void update(BytesView data);

  /// Finalises and returns the digest. The context must not be reused
  /// afterwards except via reset().
  Digest finish();

  /// Resets to the initial state.
  void reset();

 private:
  void process_block(const uint8_t* block);

  std::array<uint32_t, 8> state_;
  std::array<uint8_t, 64> buffer_;
  size_t buffer_len_ = 0;
  uint64_t total_len_ = 0;
};

/// One-shot convenience.
Digest sha256(BytesView data);

/// Digest as owned bytes (for wire formats).
Bytes digest_bytes(const Digest& d);

/// Digest as lowercase hex.
std::string digest_hex(const Digest& d);

}  // namespace acctee::crypto
