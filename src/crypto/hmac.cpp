#include "crypto/hmac.hpp"

namespace acctee::crypto {

Digest hmac_sha256(BytesView key, BytesView message) {
  constexpr size_t kBlock = 64;
  Bytes k(kBlock, 0);
  if (key.size() > kBlock) {
    Digest kd = sha256(key);
    std::copy(kd.begin(), kd.end(), k.begin());
  } else {
    std::copy(key.begin(), key.end(), k.begin());
  }

  Bytes ipad(kBlock), opad(kBlock);
  for (size_t i = 0; i < kBlock; ++i) {
    ipad[i] = k[i] ^ 0x36;
    opad[i] = k[i] ^ 0x5c;
  }

  Sha256 inner;
  inner.update(ipad);
  inner.update(message);
  Digest inner_digest = inner.finish();

  Sha256 outer;
  outer.update(opad);
  outer.update(BytesView(inner_digest.data(), inner_digest.size()));
  return outer.finish();
}

bool hmac_verify(BytesView key, BytesView message, BytesView mac) {
  Digest expected = hmac_sha256(key, message);
  return ct_equal(BytesView(expected.data(), expected.size()), mac);
}

Bytes derive_key(BytesView root_key, std::string_view label) {
  Digest d = hmac_sha256(root_key, to_bytes(label));
  return digest_bytes(d);
}

}  // namespace acctee::crypto
