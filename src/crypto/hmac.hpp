// HMAC-SHA-256 (RFC 2104), used for SGX quote MACs (the quoting enclave and
// the simulated attestation service share platform keys, mirroring how real
// EPID quotes are only verifiable through Intel's attestation service).
#pragma once

#include "common/bytes.hpp"
#include "crypto/sha256.hpp"

namespace acctee::crypto {

/// Computes HMAC-SHA-256(key, message).
Digest hmac_sha256(BytesView key, BytesView message);

/// Verifies a MAC in constant time.
bool hmac_verify(BytesView key, BytesView message, BytesView mac);

/// HKDF-style key derivation: derive a subkey for `label` from a root key.
/// Used to give each simulated platform / enclave its own key material.
Bytes derive_key(BytesView root_key, std::string_view label);

}  // namespace acctee::crypto
