// Multi-use hash-based signer: a Merkle tree over N Lamport one-time keys.
//
// The signer's *identity* is the 32-byte Merkle root. Each signature embeds
// the one-time public key, its index, and an inclusion proof, so verifiers
// need only the root. Enclaves in the SGX simulation bind their identity
// root into attestation quotes (sgx/attestation.hpp), giving remote parties
// an offline-verifiable chain: quote -> identity root -> signature.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/bytes.hpp"
#include "crypto/lamport.hpp"
#include "crypto/merkle.hpp"

namespace acctee::crypto {

/// A self-contained, offline-verifiable signature.
struct Signature {
  uint32_t key_index = 0;
  LamportPublicKey one_time_key;
  MerkleProof inclusion;
  LamportSignature lamport;

  Bytes serialize() const;
  static Signature deserialize(BytesView data);
};

/// Holds N one-time keys derived from a seed; signs up to N messages.
class Signer {
 public:
  /// Derives `num_keys` one-time keys from `seed`.
  Signer(BytesView seed, uint32_t num_keys);

  /// The public identity (Merkle root over one-time key fingerprints).
  Digest identity() const { return tree_.root(); }

  /// Signs `message` with the next unused one-time key. Throws Error once
  /// all keys are exhausted.
  Signature sign(BytesView message);

  uint32_t keys_remaining() const {
    return static_cast<uint32_t>(keys_.size()) - next_key_;
  }

 private:
  std::vector<LamportKeyPair> keys_;
  MerkleTree tree_;
  uint32_t next_key_ = 0;

  static MerkleTree build_tree(const std::vector<LamportKeyPair>& keys);
};

/// Verifies `sig` over `message` against a signer identity root.
bool signature_verify(const Digest& identity, BytesView message,
                      const Signature& sig);

}  // namespace acctee::crypto
