#include "crypto/signer.hpp"

#include "common/error.hpp"
#include "crypto/hmac.hpp"

namespace acctee::crypto {

Bytes Signature::serialize() const {
  Bytes out;
  append_u32le(out, key_index);
  Bytes pub = one_time_key.serialize();
  append_u32le(out, static_cast<uint32_t>(pub.size()));
  append(out, pub);
  Bytes proof = inclusion.serialize();
  append_u32le(out, static_cast<uint32_t>(proof.size()));
  append(out, proof);
  Bytes sig = lamport.serialize();
  append_u32le(out, static_cast<uint32_t>(sig.size()));
  append(out, sig);
  return out;
}

Signature Signature::deserialize(BytesView data) {
  Signature out;
  size_t off = 0;
  out.key_index = read_u32le(data, off);
  off += 4;
  auto take = [&](const char* what) {
    uint32_t len = read_u32le(data, off);
    off += 4;
    if (off + len > data.size()) {
      throw std::invalid_argument(std::string("Signature: truncated ") + what);
    }
    BytesView view = data.subspan(off, len);
    off += len;
    return view;
  };
  out.one_time_key = LamportPublicKey::deserialize(take("public key"));
  out.inclusion = MerkleProof::deserialize(take("proof"));
  out.lamport = LamportSignature::deserialize(take("lamport"));
  return out;
}

MerkleTree Signer::build_tree(const std::vector<LamportKeyPair>& keys) {
  std::vector<Bytes> leaves;
  leaves.reserve(keys.size());
  for (const auto& kp : keys) {
    Digest fp = kp.pub.fingerprint();
    leaves.push_back(digest_bytes(fp));
  }
  return MerkleTree(leaves);
}

Signer::Signer(BytesView seed, uint32_t num_keys)
    : keys_([&] {
        std::vector<LamportKeyPair> keys;
        keys.reserve(num_keys);
        for (uint32_t i = 0; i < num_keys; ++i) {
          Bytes label = to_bytes("signer-key");
          append_u32le(label, i);
          Digest key_seed = hmac_sha256(seed, label);
          keys.push_back(
              LamportKeyPair::from_seed(BytesView(key_seed.data(), 32)));
        }
        return keys;
      }()),
      tree_(build_tree(keys_)) {
  if (num_keys == 0) throw Error("Signer: num_keys must be > 0");
}

Signature Signer::sign(BytesView message) {
  if (next_key_ >= keys_.size()) {
    throw Error("Signer: one-time keys exhausted");
  }
  uint32_t idx = next_key_++;
  Signature sig;
  sig.key_index = idx;
  sig.one_time_key = keys_[idx].pub;
  sig.inclusion = tree_.prove(idx);
  sig.lamport = lamport_sign(keys_[idx].priv, message);
  return sig;
}

bool signature_verify(const Digest& identity, BytesView message,
                      const Signature& sig) {
  if (sig.inclusion.leaf_index != sig.key_index) return false;
  Digest fp = sig.one_time_key.fingerprint();
  if (!merkle_verify(identity, digest_bytes(fp), sig.inclusion)) return false;
  return lamport_verify(sig.one_time_key, message, sig.lamport);
}

}  // namespace acctee::crypto
