// Lamport one-time signatures over SHA-256.
//
// AccTEE needs *offline-verifiable* signatures for instrumentation evidence
// and resource-usage logs: either party must be able to check them without
// talking to a service. Lamport OTS is hash-based, so it composes with the
// SHA-256 primitive we already trust for enclave measurements, and requires
// no big-integer arithmetic. Multi-use signing is layered on top via a
// Merkle tree of one-time keys (see signer.hpp).
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.hpp"
#include "crypto/sha256.hpp"

namespace acctee::crypto {

/// 256 bit positions x 2 values per bit.
constexpr size_t kLamportSlots = 256;

/// A one-time private key: 512 random 32-byte preimages.
struct LamportPrivateKey {
  std::array<std::array<uint8_t, 32>, 2 * kLamportSlots> preimages;
};

/// The matching public key: SHA-256 of each preimage.
struct LamportPublicKey {
  std::array<Digest, 2 * kLamportSlots> hashes;

  /// Compact commitment to this public key (hash of all slot hashes).
  Digest fingerprint() const;

  Bytes serialize() const;
  static LamportPublicKey deserialize(BytesView data);
};

/// A signature: one revealed preimage per message-digest bit.
struct LamportSignature {
  std::array<std::array<uint8_t, 32>, kLamportSlots> revealed;

  Bytes serialize() const;
  static LamportSignature deserialize(BytesView data);
};

/// Derives a key pair deterministically from a 32-byte seed. Deterministic
/// derivation keeps experiments reproducible; seeds come from the enclave's
/// sealed key material in the SGX simulation.
struct LamportKeyPair {
  LamportPrivateKey priv;
  LamportPublicKey pub;

  static LamportKeyPair from_seed(BytesView seed);
};

/// Signs the SHA-256 digest of `message`.
LamportSignature lamport_sign(const LamportPrivateKey& priv, BytesView message);

/// Verifies a signature over `message` against `pub`.
bool lamport_verify(const LamportPublicKey& pub, BytesView message,
                    const LamportSignature& sig);

}  // namespace acctee::crypto
