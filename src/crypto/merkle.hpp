// Binary Merkle tree with inclusion proofs.
//
// Used to commit to a batch of Lamport one-time public keys under a single
// 32-byte identity (signer.hpp), and available to embedders that want to
// commit to batches of resource logs.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bytes.hpp"
#include "crypto/sha256.hpp"

namespace acctee::crypto {

/// An inclusion proof: sibling hashes from leaf to root, plus the leaf index
/// (whose bits select left/right at each level).
struct MerkleProof {
  uint64_t leaf_index = 0;
  std::vector<Digest> siblings;

  Bytes serialize() const;
  static MerkleProof deserialize(BytesView data);
};

/// Merkle tree over pre-hashed leaves. Leaves are domain-separated from
/// interior nodes (0x00 / 0x01 prefixes) to prevent second-preimage attacks.
class MerkleTree {
 public:
  /// Builds a tree over `leaf_data` (each element is hashed as a leaf).
  /// Throws std::invalid_argument if empty.
  explicit MerkleTree(const std::vector<Bytes>& leaf_data);

  Digest root() const { return levels_.back()[0]; }
  size_t leaf_count() const { return levels_[0].size(); }

  /// Proof for leaf `index`; throws std::out_of_range if invalid.
  MerkleProof prove(uint64_t index) const;

  /// Hashes used for leaves / interior nodes (exposed for verification).
  static Digest hash_leaf(BytesView data);
  static Digest hash_node(const Digest& left, const Digest& right);

 private:
  // levels_[0] = leaf hashes, levels_.back() = {root}. Odd nodes are paired
  // with themselves (Bitcoin-style duplication).
  std::vector<std::vector<Digest>> levels_;
};

/// Verifies that `leaf_data` is included under `root` via `proof`.
bool merkle_verify(const Digest& root, BytesView leaf_data,
                   const MerkleProof& proof);

}  // namespace acctee::crypto
