#include "crypto/merkle.hpp"
#include <algorithm>

#include <stdexcept>

namespace acctee::crypto {

Bytes MerkleProof::serialize() const {
  Bytes out;
  append_u64le(out, leaf_index);
  append_u32le(out, static_cast<uint32_t>(siblings.size()));
  for (const auto& s : siblings) append(out, BytesView(s.data(), s.size()));
  return out;
}

MerkleProof MerkleProof::deserialize(BytesView data) {
  MerkleProof proof;
  proof.leaf_index = read_u64le(data, 0);
  uint32_t n = read_u32le(data, 8);
  if (data.size() != 12 + static_cast<size_t>(n) * 32) {
    throw std::invalid_argument("MerkleProof: bad size");
  }
  proof.siblings.resize(n);
  for (uint32_t i = 0; i < n; ++i) {
    std::copy_n(data.begin() + 12 + i * 32, 32, proof.siblings[i].begin());
  }
  return proof;
}

Digest MerkleTree::hash_leaf(BytesView data) {
  Sha256 ctx;
  uint8_t tag = 0x00;
  ctx.update(BytesView(&tag, 1));
  ctx.update(data);
  return ctx.finish();
}

Digest MerkleTree::hash_node(const Digest& left, const Digest& right) {
  Sha256 ctx;
  uint8_t tag = 0x01;
  ctx.update(BytesView(&tag, 1));
  ctx.update(BytesView(left.data(), left.size()));
  ctx.update(BytesView(right.data(), right.size()));
  return ctx.finish();
}

MerkleTree::MerkleTree(const std::vector<Bytes>& leaf_data) {
  if (leaf_data.empty()) {
    throw std::invalid_argument("MerkleTree: no leaves");
  }
  std::vector<Digest> level;
  level.reserve(leaf_data.size());
  for (const auto& d : leaf_data) level.push_back(hash_leaf(d));
  levels_.push_back(std::move(level));

  while (levels_.back().size() > 1) {
    const auto& prev = levels_.back();
    std::vector<Digest> next;
    next.reserve((prev.size() + 1) / 2);
    for (size_t i = 0; i < prev.size(); i += 2) {
      const Digest& left = prev[i];
      const Digest& right = (i + 1 < prev.size()) ? prev[i + 1] : prev[i];
      next.push_back(hash_node(left, right));
    }
    levels_.push_back(std::move(next));
  }
}

MerkleProof MerkleTree::prove(uint64_t index) const {
  if (index >= levels_[0].size()) {
    throw std::out_of_range("MerkleTree::prove: bad index");
  }
  MerkleProof proof;
  proof.leaf_index = index;
  uint64_t pos = index;
  for (size_t lvl = 0; lvl + 1 < levels_.size(); ++lvl) {
    const auto& nodes = levels_[lvl];
    uint64_t sibling = pos ^ 1;
    proof.siblings.push_back(sibling < nodes.size() ? nodes[sibling]
                                                    : nodes[pos]);
    pos >>= 1;
  }
  return proof;
}

bool merkle_verify(const Digest& root, BytesView leaf_data,
                   const MerkleProof& proof) {
  Digest h = MerkleTree::hash_leaf(leaf_data);
  uint64_t pos = proof.leaf_index;
  for (const auto& sibling : proof.siblings) {
    h = (pos & 1) ? MerkleTree::hash_node(sibling, h)
                  : MerkleTree::hash_node(h, sibling);
    pos >>= 1;
  }
  return h == root;
}

}  // namespace acctee::crypto
