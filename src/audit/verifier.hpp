// Offline ledger verification (DESIGN.md §13): replays the whole hash
// chain, checks every log signature against the attested AE identity, every
// checkpoint signature, Merkle root and inclusion proof, and every sequence
// number — and reports *which* interval was dropped, reordered, or forged.
//
// Everything here is pure computation over the ledger bytes plus one
// 32-byte identity; no enclave, platform, or network access, so either
// party (or a third-party auditor) can run it long after the fact.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "audit/ledger.hpp"

namespace acctee::audit {

struct VerifyReport {
  bool ok = false;
  uint64_t entries_checked = 0;
  uint64_t checkpoints_checked = 0;
  uint64_t first_sequence = 0;
  uint64_t last_sequence = 0;
  /// Human-readable findings; each names the entry index / sequence
  /// interval it implicates. Empty iff ok.
  std::vector<std::string> problems;

  std::string to_string() const;
};

/// Verifies `ledger` against the AE identity obtained via attestation.
/// Checks, in order:
///   1. every entry's signature over its canonical log bytes,
///   2. sequence continuity (a gap names the dropped interval; a
///      non-monotone step names the reordering),
///   3. the prev_log_hash chain between consecutive entries,
///   4. every checkpoint: signature, recomputed Merkle batch root, a spot
///      inclusion proof per covered entry, contiguous coverage, and the
///      checkpoint-to-checkpoint hash chain,
///   5. that no appended entry escaped checkpoint coverage (a sealed
///      ledger commits to everything it holds).
VerifyReport verify_ledger(const Ledger& ledger,
                           const crypto::Digest& ae_identity);

/// Verification of a *set* of single-AE ledgers — what the sharded gateway
/// emits (one hash chain per worker AE, DESIGN.md §16).
struct LedgerSetReport {
  bool ok = false;
  /// One verify_ledger report per input ledger, in input order.
  std::vector<VerifyReport> per_ledger;
  /// Deterministic per-tenant merge over all final logs in the set; only
  /// meaningful when ok (see merged_totals_by_tenant).
  std::map<std::string, UsageTotals> merged_totals;
  /// Set-level findings (duplicate AE identity, size mismatch).
  std::vector<std::string> problems;

  std::string to_string() const;
};

/// Verifies each ledger against its pinned AE identity (identities[i] for
/// ledgers[i]; pass an empty vector to fall back to each ledger's recorded
/// identity — then the set is only as trustworthy as the files). On top of
/// the per-ledger checks, rejects two ledgers claiming the same AE
/// identity: each AE owns one strictly-increasing sequence space, so a
/// second chain under the same identity is either a forked/duplicated chain
/// or a replay vehicle — per-chain sequence continuity cannot see that, only
/// the set view can.
LedgerSetReport verify_ledger_set(const std::vector<const Ledger*>& ledgers,
                                  const std::vector<crypto::Digest>&
                                      ae_identities = {});

}  // namespace acctee::audit
