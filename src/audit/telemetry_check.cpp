#include "audit/telemetry_check.hpp"

#include <map>
#include <sstream>

#include "audit/reconcile.hpp"

namespace acctee::audit {

std::string TelemetryVerifyReport::to_string() const {
  std::ostringstream out;
  out << (ok ? "OK" : "FAILED") << ": " << snapshots_checked
      << " telemetry snapshot(s)\n";
  for (const std::string& p : problems) out << "  problem: " << p << "\n";
  return out.str();
}

TelemetryVerifyReport verify_telemetry_chain(
    const std::vector<core::SignedTelemetrySnapshot>& chain,
    const crypto::Digest& ae_identity) {
  TelemetryVerifyReport report;
  crypto::Digest expected_prev{};  // all-zero before the first snapshot
  // Counter series must never decrease across snapshots.
  std::map<std::pair<std::string, std::string>, uint64_t> last_value;
  for (size_t i = 0; i < chain.size(); ++i) {
    const core::SignedTelemetrySnapshot& signed_snap = chain[i];
    const core::TelemetrySnapshot& snap = signed_snap.snapshot;
    if (!signed_snap.verify(ae_identity)) {
      report.problems.push_back("snapshot " + std::to_string(i) +
                                ": signature does not verify");
    }
    if (snap.sequence != i) {
      report.problems.push_back(
          "snapshot " + std::to_string(i) + ": sequence " +
          std::to_string(snap.sequence) + ", expected " + std::to_string(i));
    }
    if (snap.prev_snapshot_hash != expected_prev) {
      report.problems.push_back("snapshot " + std::to_string(i) +
                                ": prev-hash chain broken");
    }
    for (const core::TelemetrySample& s : snap.samples) {
      auto key = std::make_pair(s.name, s.labels);
      auto it = last_value.find(key);
      if (it != last_value.end() && s.value < it->second) {
        report.problems.push_back(
            "snapshot " + std::to_string(i) + ": counter " + s.name + "{" +
            s.labels + "} decreased (" + std::to_string(it->second) + " -> " +
            std::to_string(s.value) + ")");
      }
      last_value[key] = s.value;
    }
    expected_prev = crypto::sha256(snap.payload());
    ++report.snapshots_checked;
  }
  report.ok = report.problems.empty();
  return report;
}

TelemetryVerifyReport verify_telemetry_against_ledgers(
    const std::vector<core::SignedTelemetrySnapshot>& chain,
    const crypto::Digest& ae_identity,
    const std::vector<const Ledger*>& ledgers) {
  TelemetryVerifyReport report = verify_telemetry_chain(chain, ae_identity);
  if (chain.empty()) {
    report.problems.push_back(
        "no telemetry snapshots to compare against the ledger");
    report.ok = false;
    return report;
  }
  // Render the latest snapshot's billing samples in exposition format and
  // push them through the same scrape-parsing path `acctee audit reconcile`
  // uses, so both planes are interpreted by identical code.
  std::string scrape;
  for (const core::TelemetrySample& s : chain.back().snapshot.samples) {
    if (s.name.rfind("acctee_billing_", 0) != 0) continue;
    scrape += s.name;
    if (!s.labels.empty()) scrape += "{" + s.labels + "}";
    scrape += " " + std::to_string(s.value) + "\n";
  }
  std::map<std::string, UsageTotals> from_telemetry =
      billing_totals_from_scrape(scrape);
  std::map<std::string, UsageTotals> from_ledger =
      merged_totals_by_tenant(ledgers);
  if (from_telemetry != from_ledger) {
    for (const auto& [tenant, totals] : from_ledger) {
      auto it = from_telemetry.find(tenant);
      if (it == from_telemetry.end()) {
        report.problems.push_back("tenant \"" + tenant +
                                  "\" billed in ledger but absent from "
                                  "signed telemetry");
      } else if (!(it->second == totals)) {
        report.problems.push_back("tenant \"" + tenant +
                                  "\" signed telemetry disagrees with the "
                                  "ledger's billed totals");
      }
    }
    for (const auto& [tenant, totals] : from_telemetry) {
      if (!from_ledger.count(tenant)) {
        report.problems.push_back("tenant \"" + tenant +
                                  "\" in signed telemetry but never billed "
                                  "in the ledger");
      }
    }
    if (report.problems.empty()) {
      report.problems.push_back(
          "signed telemetry and ledger totals disagree");
    }
  }
  report.ok = report.problems.empty();
  return report;
}

}  // namespace acctee::audit
