// Metrics↔ledger reconciliation (DESIGN.md §13).
//
// The two observability planes check each other: the *trusted* plane is the
// signed, hash-chained ledger (what billing is computed from); the
// *untrusted* plane is the obs::Registry scrape the gateway exports for
// monitoring (never signed, never feeds billing). In honest operation the
// gateway's acctee_billing_* counters are incremented from exactly the
// verified logs that enter the ledger, so the per-tenant totals must agree.
// Divergence beyond the tolerance means one plane lies: metrics silently
// dropped/inflated (monitoring can't be trusted) or ledger entries went
// missing (billing can't be trusted) — either way, an operator must look.
//
// What this does NOT prove: agreement is necessary, not sufficient — a host
// that drops a log *before* both planes see it fools neither check here
// (that is what the per-execution chain in verify_outcome_chain catches).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "audit/ledger.hpp"

namespace acctee::audit {

/// One per-tenant per-dimension comparison.
struct ReconcileRow {
  std::string tenant;
  std::string dimension;  // "logs", "weighted_instructions", ...
  uint64_t ledger_value = 0;
  uint64_t metrics_value = 0;
  double divergence = 0;  // |ledger - metrics| / max(ledger, 1)
  bool ok = false;
};

struct ReconcileReport {
  bool ok = false;
  double tolerance = 0;
  std::vector<ReconcileRow> rows;
  /// Structural findings (tenant present in one plane only, unparsable
  /// scrape, ...).
  std::vector<std::string> problems;

  std::string to_string() const;
};

/// Sums the acctee_billing_* series of a Prometheus text scrape per tenant
/// (across gateway/function label splits), undoing label-value escaping.
std::map<std::string, UsageTotals> billing_totals_from_scrape(
    const std::string& prometheus_text);

/// Cross-checks the ledger's per-tenant final-log totals against a metrics
/// scrape. `tolerance` is the allowed relative divergence per dimension
/// (0 = exact).
ReconcileReport reconcile(const Ledger& ledger,
                          const std::string& prometheus_text,
                          double tolerance = 0.0);

/// Same cross-check over a *set* of per-AE ledgers (the sharded gateway's
/// one-chain-per-worker output): the deterministically merged per-tenant
/// totals (merged_totals_by_tenant) must agree with the scrape. The scrape
/// side already sums across gateway/shard/function label splits, so sharded
/// acctee_billing_* series reconcile without any special casing.
ReconcileReport reconcile_set(const std::vector<const Ledger*>& ledgers,
                              const std::string& prometheus_text,
                              double tolerance = 0.0);

}  // namespace acctee::audit
