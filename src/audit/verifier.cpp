#include "audit/verifier.hpp"

#include <cstdint>
#include <sstream>

namespace acctee::audit {

namespace {

std::string interval(uint64_t lo, uint64_t hi) {
  return lo == hi ? std::to_string(lo)
                  : std::to_string(lo) + ".." + std::to_string(hi);
}

// The ledger file is untrusted: checkpoint fields can be arbitrary u64s,
// so range arithmetic must not wrap.
uint64_t sat_add(uint64_t a, uint64_t b) {
  return a > UINT64_MAX - b ? UINT64_MAX : a + b;
}

}  // namespace

std::string VerifyReport::to_string() const {
  std::ostringstream out;
  out << (ok ? "OK" : "FAILED") << ": " << entries_checked << " entries, "
      << checkpoints_checked << " checkpoints";
  if (entries_checked > 0) {
    out << ", sequences " << first_sequence << ".." << last_sequence;
  }
  out << "\n";
  for (const std::string& p : problems) out << "  problem: " << p << "\n";
  return out.str();
}

VerifyReport verify_ledger(const Ledger& ledger,
                           const crypto::Digest& ae_identity) {
  VerifyReport report;
  const std::vector<LedgerEntry>& entries = ledger.entries();
  auto problem = [&](std::string text) {
    report.problems.push_back(std::move(text));
  };

  // 1-3. Per-entry signatures, sequence continuity, hash chain.
  for (size_t i = 0; i < entries.size(); ++i) {
    const core::SignedResourceLog& slog = entries[i].signed_log;
    ++report.entries_checked;
    if (!slog.verify(ae_identity)) {
      problem("entry " + std::to_string(i) + " (sequence " +
              std::to_string(slog.log.sequence) +
              "): signature does not verify against the AE identity "
              "(forged or bit-flipped log)");
    }
    if (i == 0) {
      report.first_sequence = slog.log.sequence;
    } else {
      const core::ResourceUsageLog& prev = entries[i - 1].signed_log.log;
      const core::ResourceUsageLog& cur = slog.log;
      if (cur.sequence <= prev.sequence) {
        problem("entries " + interval(i - 1, i) + ": sequence went " +
                std::to_string(prev.sequence) + " -> " +
                std::to_string(cur.sequence) + " (reordered or replayed log)");
      } else if (cur.sequence != prev.sequence + 1) {
        problem("entries " + interval(i - 1, i) + ": sequences " +
                interval(prev.sequence + 1, cur.sequence - 1) +
                " missing (dropped log interval)");
      }
      if (cur.prev_log_hash != crypto::sha256(prev.serialize())) {
        problem("entry " + std::to_string(i) + " (sequence " +
                std::to_string(cur.sequence) +
                "): prev_log_hash does not match entry " +
                std::to_string(i - 1) + " (chain break)");
      }
    }
    report.last_sequence = slog.log.sequence;
  }

  // 4. Checkpoints: signatures, recomputed roots, inclusion proofs,
  // contiguous coverage, checkpoint hash chain.
  uint64_t covered = 0;
  crypto::Digest prev_cp_hash{};
  const std::vector<Checkpoint>& checkpoints = ledger.checkpoints();
  for (size_t c = 0; c < checkpoints.size(); ++c) {
    const Checkpoint& cp = checkpoints[c];
    ++report.checkpoints_checked;
    std::string tag = "checkpoint " + std::to_string(c);
    if (cp.index != c) {
      problem(tag + ": index " + std::to_string(cp.index) +
              " out of order (expected " + std::to_string(c) + ")");
    }
    if (cp.first_entry != covered) {
      problem(tag + ": covers entries from " + std::to_string(cp.first_entry) +
              " but coverage ends at " + std::to_string(covered) +
              " (gap or overlap in committed batches)");
    }
    if (cp.count == 0 || cp.count > entries.size() ||
        cp.first_entry > entries.size() - cp.count) {
      problem(tag + ": covers entries " +
              interval(cp.first_entry, sat_add(cp.first_entry, cp.count)) +
              " beyond the ledger's " + std::to_string(entries.size()));
      covered = sat_add(cp.first_entry, cp.count);
      continue;
    }
    if (cp.prev_checkpoint_hash != prev_cp_hash) {
      problem(tag + ": prev_checkpoint_hash broken (checkpoint chain)");
    }
    if (!cp.verify(ae_identity)) {
      problem(tag + ": signature does not verify against the AE identity");
    }
    std::vector<Bytes> leaves;
    leaves.reserve(cp.count);
    for (uint64_t i = 0; i < cp.count; ++i) {
      leaves.push_back(entries[cp.first_entry + i].signed_log.log.serialize());
    }
    crypto::MerkleTree tree(leaves);
    if (tree.root() != cp.batch_root) {
      problem(tag + ": Merkle root mismatch over entries " +
              interval(cp.first_entry, cp.first_entry + cp.count - 1) +
              " (a committed log was altered after signing)");
    } else {
      for (uint64_t i = 0; i < cp.count; ++i) {
        if (!crypto::merkle_verify(cp.batch_root, leaves[i], tree.prove(i))) {
          problem(tag + ": inclusion proof failed for entry " +
                  std::to_string(cp.first_entry + i));
        }
      }
    }
    prev_cp_hash = crypto::sha256(cp.payload());
    covered = cp.first_entry + cp.count;
  }

  // 5. Nothing may escape commitment in a sealed ledger.
  if (covered < entries.size()) {
    problem("entries " + interval(covered, entries.size() - 1) +
            " are not covered by any signed checkpoint");
  }

  report.ok = report.problems.empty();
  return report;
}

std::string LedgerSetReport::to_string() const {
  std::ostringstream out;
  out << (ok ? "OK" : "FAILED") << ": ledger set of " << per_ledger.size()
      << "\n";
  for (const std::string& p : problems) out << "  problem: " << p << "\n";
  for (size_t i = 0; i < per_ledger.size(); ++i) {
    out << "ledger " << i << ": " << per_ledger[i].to_string();
  }
  return out.str();
}

LedgerSetReport verify_ledger_set(
    const std::vector<const Ledger*>& ledgers,
    const std::vector<crypto::Digest>& ae_identities) {
  LedgerSetReport report;
  if (!ae_identities.empty() && ae_identities.size() != ledgers.size()) {
    report.problems.push_back(
        std::to_string(ledgers.size()) + " ledgers but " +
        std::to_string(ae_identities.size()) + " pinned AE identities");
    return report;
  }

  bool all_ok = true;
  std::map<crypto::Digest, size_t> seen_identity;
  for (size_t i = 0; i < ledgers.size(); ++i) {
    const Ledger& ledger = *ledgers[i];
    const crypto::Digest& identity =
        ae_identities.empty() ? ledger.ae_identity() : ae_identities[i];
    // One AE = one sequence space = one chain. A second ledger under the
    // same identity would let its sequences alias the first chain's — the
    // per-ledger continuity check cannot see that, so it is a set-level
    // reject even if both chains verify individually.
    auto [it, fresh] = seen_identity.try_emplace(identity, i);
    if (!fresh) {
      report.problems.push_back(
          "ledgers " + std::to_string(it->second) + " and " +
          std::to_string(i) +
          " claim the same AE identity (aliased sequence spaces)");
      all_ok = false;
    }
    report.per_ledger.push_back(verify_ledger(ledger, identity));
    all_ok = all_ok && report.per_ledger.back().ok;
  }
  report.ok = all_ok && report.problems.empty();
  if (report.ok) report.merged_totals = merged_totals_by_tenant(ledgers);
  return report;
}

}  // namespace acctee::audit
