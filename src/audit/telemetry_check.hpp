// Offline verification of attested telemetry (DESIGN.md §17).
//
// The AE signs periodic snapshots of its own counters
// (core::SignedTelemetrySnapshot): domain-separated, sequenced, and
// hash-chained per enclave. This module is the auditor's side:
//
//   verify_telemetry_chain     — signatures valid under the attested AE
//                                identity, sequences gapless from 0,
//                                prev-hash chain unbroken, per-series
//                                counter values monotone across snapshots
//                                (they are counters; a decrease means a
//                                rewritten history).
//   verify_telemetry_against_ledgers
//                              — chain checks plus the cross-plane proof:
//                                the billing counters in the *latest*
//                                snapshot must equal the per-tenant totals
//                                of the signed ledger set (rendered through
//                                the same scrape-parsing path
//                                `acctee audit reconcile` uses). Passing
//                                means the provider's exported telemetry is
//                                not just signed but *consistent with what
//                                was billed*.
#pragma once

#include <string>
#include <vector>

#include "audit/ledger.hpp"
#include "core/telemetry.hpp"

namespace acctee::audit {

struct TelemetryVerifyReport {
  bool ok = false;
  size_t snapshots_checked = 0;
  std::vector<std::string> problems;

  std::string to_string() const;
};

/// Chain-only verification of one enclave's snapshot sequence (oldest
/// first). An empty chain verifies trivially.
TelemetryVerifyReport verify_telemetry_chain(
    const std::vector<core::SignedTelemetrySnapshot>& chain,
    const crypto::Digest& ae_identity);

/// Chain verification plus ledger consistency: the latest snapshot's
/// acctee_billing_* samples, parsed as a scrape, must reconcile exactly
/// (tolerance 0) with the merged per-tenant totals of `ledgers`.
TelemetryVerifyReport verify_telemetry_against_ledgers(
    const std::vector<core::SignedTelemetrySnapshot>& chain,
    const crypto::Digest& ae_identity,
    const std::vector<const Ledger*>& ledgers);

}  // namespace acctee::audit
