#include "audit/ledger.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "common/error.hpp"

namespace acctee::audit {

namespace {

constexpr std::string_view kLedgerMagic = "acctee-audit-ledger";
constexpr uint32_t kLedgerVersion = 1;

void append_digest(Bytes& out, const crypto::Digest& d) {
  append(out, BytesView(d.data(), d.size()));
}

void append_sized(Bytes& out, BytesView data) {
  append_u32le(out, static_cast<uint32_t>(data.size()));
  append(out, data);
}

void append_string(Bytes& out, const std::string& s) {
  append_sized(out, to_bytes(s));
}

/// Sequential reader over the serialized ledger; throws on truncation.
struct Reader {
  BytesView data;
  size_t off = 0;

  BytesView take(size_t n, const char* what) {
    if (data.size() - off < n) {
      throw std::invalid_argument(std::string("Ledger: truncated ") + what);
    }
    BytesView out = data.subspan(off, n);
    off += n;
    return out;
  }
  uint32_t u32(const char* what) {
    BytesView b = take(4, what);
    return read_u32le(b, 0);
  }
  uint64_t u64(const char* what) {
    BytesView b = take(8, what);
    return read_u64le(b, 0);
  }
  crypto::Digest digest(const char* what) {
    BytesView b = take(32, what);
    crypto::Digest d;
    std::copy(b.begin(), b.end(), d.begin());
    return d;
  }
  BytesView sized(const char* what) { return take(u32(what), what); }
  std::string string(const char* what) {
    BytesView b = sized(what);
    return std::string(b.begin(), b.end());
  }
};

}  // namespace

void UsageTotals::add(const core::ResourceUsageLog& log) {
  ++final_logs;
  weighted_instructions += log.weighted_instructions;
  peak_memory_bytes += log.peak_memory_bytes;
  memory_integral += log.memory_integral;
  io_bytes_in += log.io_bytes_in;
  io_bytes_out += log.io_bytes_out;
}

Bytes Checkpoint::payload() const {
  Bytes out = to_bytes(core::kAuditCheckpointDomain);
  append_u64le(out, index);
  append_u64le(out, first_entry);
  append_u64le(out, count);
  append_digest(out, batch_root);
  append_digest(out, prev_checkpoint_hash);
  return out;
}

bool Checkpoint::verify(const crypto::Digest& ae_identity) const {
  return crypto::signature_verify(ae_identity, payload(), signature);
}

Ledger::Ledger(size_t checkpoint_every)
    : checkpoint_every_(checkpoint_every == 0 ? 1 : checkpoint_every) {}

void Ledger::append(LedgerEntry entry) {
  entries_.push_back(std::move(entry));
  if (signer_ && entries_.size() - covered_ >= checkpoint_every_) {
    emit_checkpoint(covered_, entries_.size() - covered_);
  }
}

void Ledger::seal() {
  if (signer_ && covered_ < entries_.size()) {
    emit_checkpoint(covered_, entries_.size() - covered_);
  }
}

void Ledger::emit_checkpoint(uint64_t first_entry, uint64_t count) {
  Checkpoint cp;
  cp.index = checkpoints_.size();
  cp.first_entry = first_entry;
  cp.count = count;
  std::vector<Bytes> leaves;
  leaves.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    leaves.push_back(entries_[first_entry + i].signed_log.log.serialize());
  }
  cp.batch_root = crypto::MerkleTree(leaves).root();
  if (!checkpoints_.empty()) {
    cp.prev_checkpoint_hash = crypto::sha256(checkpoints_.back().payload());
  }
  cp.signature = signer_(cp.payload());
  checkpoints_.push_back(std::move(cp));
  covered_ = first_entry + count;
}

std::map<std::string, UsageTotals> Ledger::totals_by_tenant() const {
  std::map<std::string, UsageTotals> totals;
  for (const LedgerEntry& entry : entries_) {
    if (!entry.signed_log.log.is_final) continue;
    totals[entry.tenant].add(entry.signed_log.log);
  }
  return totals;
}

std::map<std::string, UsageTotals> merged_totals_by_tenant(
    const std::vector<const Ledger*>& ledgers) {
  std::map<std::string, UsageTotals> merged;
  for (const Ledger* ledger : ledgers) {
    if (ledger == nullptr) continue;
    for (const LedgerEntry& entry : ledger->entries()) {
      if (!entry.signed_log.log.is_final) continue;
      merged[entry.tenant].add(entry.signed_log.log);
    }
  }
  return merged;
}

Bytes Ledger::serialize() const {
  Bytes out = to_bytes(kLedgerMagic);
  append_u32le(out, kLedgerVersion);
  append_u64le(out, checkpoint_every_);
  append_digest(out, ae_identity_);
  append_u64le(out, entries_.size());
  for (const LedgerEntry& entry : entries_) {
    append_string(out, entry.tenant);
    append_string(out, entry.function);
    append_sized(out, entry.signed_log.log.serialize());
    append_sized(out, entry.signed_log.signature.serialize());
  }
  append_u64le(out, checkpoints_.size());
  for (const Checkpoint& cp : checkpoints_) {
    append_u64le(out, cp.index);
    append_u64le(out, cp.first_entry);
    append_u64le(out, cp.count);
    append_digest(out, cp.batch_root);
    append_digest(out, cp.prev_checkpoint_hash);
    append_sized(out, cp.signature.serialize());
  }
  return out;
}

Ledger Ledger::deserialize(BytesView data) {
  Reader r{data};
  Bytes magic = to_bytes(kLedgerMagic);
  BytesView got = r.take(magic.size(), "magic");
  if (!std::equal(magic.begin(), magic.end(), got.begin())) {
    throw std::invalid_argument("Ledger: bad magic");
  }
  uint32_t version = r.u32("version");
  if (version != kLedgerVersion) {
    throw std::invalid_argument("Ledger: unsupported version " +
                                std::to_string(version));
  }
  Ledger ledger(static_cast<size_t>(r.u64("checkpoint_every")));
  ledger.ae_identity_ = r.digest("ae identity");
  // The declared counts are untrusted: cap each reserve by what the bytes
  // remaining after the header could possibly hold (an entry serializes to
  // at least four length prefixes, a checkpoint to three u64s, two digests
  // and a length prefix), so a tiny crafted file declaring 2^60 entries
  // fails as truncated instead of triggering an exabyte allocation.
  uint64_t entry_count = r.u64("entry count");
  ledger.entries_.reserve(
      std::min<uint64_t>(entry_count, (data.size() - r.off) / 16));
  for (uint64_t i = 0; i < entry_count; ++i) {
    LedgerEntry entry;
    entry.tenant = r.string("tenant");
    entry.function = r.string("function");
    entry.signed_log.log =
        core::ResourceUsageLog::deserialize(r.sized("log"));
    entry.signed_log.signature =
        crypto::Signature::deserialize(r.sized("signature"));
    ledger.entries_.push_back(std::move(entry));
  }
  uint64_t checkpoint_count = r.u64("checkpoint count");
  ledger.checkpoints_.reserve(
      std::min<uint64_t>(checkpoint_count, (data.size() - r.off) / 92));
  for (uint64_t i = 0; i < checkpoint_count; ++i) {
    Checkpoint cp;
    cp.index = r.u64("checkpoint index");
    cp.first_entry = r.u64("checkpoint first");
    cp.count = r.u64("checkpoint span");
    cp.batch_root = r.digest("batch root");
    cp.prev_checkpoint_hash = r.digest("prev checkpoint hash");
    cp.signature = crypto::Signature::deserialize(r.sized("checkpoint sig"));
    ledger.checkpoints_.push_back(std::move(cp));
    ledger.covered_ = cp.first_entry + cp.count;
  }
  if (r.off != data.size()) {
    throw std::invalid_argument("Ledger: trailing bytes");
  }
  return ledger;
}

void Ledger::save(const std::string& path) const {
  Bytes data = serialize();
  std::ofstream out(path, std::ios::binary);
  if (!out) throw Error("Ledger: cannot write " + path);
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
}

Ledger Ledger::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Error("Ledger: cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  std::string s = ss.str();
  return deserialize(Bytes(s.begin(), s.end()));
}

}  // namespace acctee::audit
