// Trusted audit ledger (DESIGN.md §13): the append-only record of every
// signed resource usage log an accounting enclave emitted, plus periodic
// Merkle-batched checkpoints the AE signs once per batch.
//
// Individual logs already chain via prev_log_hash (resource_log.hpp), so a
// dropped or reordered log is detectable; checkpoints add (1) one AE
// signature amortised over `checkpoint_every` logs — at gateway throughput
// the per-log Lamport signature is the expensive part — and (2) a commitment
// an auditor can check without trusting whoever stored the file. The ledger
// itself is *untrusted storage*: everything audit::verify_ledger proves is
// rooted in the AE identity obtained via attestation, never in this file.
//
// Not thread-safe: callers serialise access (faas::Gateway appends under its
// billing mutex).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "core/resource_log.hpp"
#include "crypto/merkle.hpp"

namespace acctee::audit {

/// One appended log with its billing labels (who pays, for what).
struct LedgerEntry {
  std::string tenant;
  std::string function;
  core::SignedResourceLog signed_log;
};

/// A signed commitment to a contiguous batch of ledger entries.
struct Checkpoint {
  uint64_t index = 0;        // checkpoint number (0, 1, ...)
  uint64_t first_entry = 0;  // ledger index of the first covered entry
  uint64_t count = 0;        // entries covered
  crypto::Digest batch_root{};            // Merkle root over the batch
  crypto::Digest prev_checkpoint_hash{};  // sha256(previous payload); 0 first
  crypto::Signature signature;            // AE signature over payload()

  /// Canonical bytes the AE signs, prefixed with
  /// core::kAuditCheckpointDomain (domain-separated from resource logs).
  Bytes payload() const;
  bool verify(const crypto::Digest& ae_identity) const;
};

/// Per-tenant resource totals summed over *final* logs (interim logs are
/// cumulative snapshots of the same run and must not be double-billed).
struct UsageTotals {
  uint64_t final_logs = 0;
  uint64_t weighted_instructions = 0;
  uint64_t peak_memory_bytes = 0;  // sum of per-execution peaks
  uint64_t memory_integral = 0;
  uint64_t io_bytes_in = 0;
  uint64_t io_bytes_out = 0;

  void add(const core::ResourceUsageLog& log);
  bool operator==(const UsageTotals&) const = default;
};

class Ledger {
 public:
  /// Signs a checkpoint payload with the AE identity (wraps
  /// AccountingEnclave::sign_checkpoint; a std::function so the audit layer
  /// never needs the enclave type).
  using CheckpointSigner = std::function<crypto::Signature(BytesView)>;

  explicit Ledger(size_t checkpoint_every = 64);

  /// The AE identity the logs claim to be signed under. Recorded for
  /// convenience (offline verification needs *some* identity to start
  /// from); an auditor who attested the AE passes their own pinned identity
  /// to verify_ledger instead of trusting this field.
  void set_ae_identity(const crypto::Digest& identity) {
    ae_identity_ = identity;
  }
  const crypto::Digest& ae_identity() const { return ae_identity_; }

  /// Without a signer, appends accumulate but no checkpoints are emitted.
  void set_checkpoint_signer(CheckpointSigner signer) {
    signer_ = std::move(signer);
  }

  /// Appends one signed log; emits a signed checkpoint once
  /// `checkpoint_every` entries have accumulated since the last one.
  void append(LedgerEntry entry);

  /// Emits a final checkpoint over any trailing uncovered entries (no-op if
  /// everything is covered or no signer is set).
  void seal();

  const std::vector<LedgerEntry>& entries() const { return entries_; }
  const std::vector<Checkpoint>& checkpoints() const { return checkpoints_; }
  size_t checkpoint_every() const { return checkpoint_every_; }

  /// Per-tenant totals over final logs (what a bill would be computed
  /// from). Meaningful for trust only after verify_ledger passes.
  std::map<std::string, UsageTotals> totals_by_tenant() const;

  /// Ledger file format (magic + version + AE identity + entries +
  /// checkpoints, all length-prefixed little-endian).
  Bytes serialize() const;
  static Ledger deserialize(BytesView data);
  void save(const std::string& path) const;
  static Ledger load(const std::string& path);

 private:
  void emit_checkpoint(uint64_t first_entry, uint64_t count);

  size_t checkpoint_every_;
  crypto::Digest ae_identity_{};
  CheckpointSigner signer_;
  std::vector<LedgerEntry> entries_;
  std::vector<Checkpoint> checkpoints_;
  uint64_t covered_ = 0;  // entries committed by checkpoints so far
};

/// Deterministic merge of per-tenant totals across a set of ledgers (the
/// sharded gateway emits one hash chain per worker AE). Summation over u64
/// is commutative and associative, so the result is independent of ledger
/// order — two auditors merging the same chains in different orders agree
/// bit for bit.
std::map<std::string, UsageTotals> merged_totals_by_tenant(
    const std::vector<const Ledger*>& ledgers);

}  // namespace acctee::audit
