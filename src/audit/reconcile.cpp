#include "audit/reconcile.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <sstream>

namespace acctee::audit {

namespace {

/// One parsed sample: metric name, label map, value.
struct Sample {
  std::string name;
  std::map<std::string, std::string> labels;
  uint64_t value = 0;
};

/// Parses `name{k="v",...} value` lines of the Prometheus text exposition
/// format (the subset obs::Registry emits), undoing \\, \" and \n escapes
/// in label values. Malformed lines are skipped — a scrape is untrusted
/// input and the reconciler reports on what it can read.
std::vector<Sample> parse_scrape(const std::string& text) {
  std::vector<Sample> samples;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    Sample s;
    size_t pos = line.find_first_of("{ ");
    if (pos == std::string::npos) continue;
    s.name = line.substr(0, pos);
    if (line[pos] == '{') {
      ++pos;
      while (pos < line.size() && line[pos] != '}') {
        size_t eq = line.find('=', pos);
        if (eq == std::string::npos || eq + 1 >= line.size() ||
            line[eq + 1] != '"') {
          pos = std::string::npos;
          break;
        }
        std::string key = line.substr(pos, eq - pos);
        std::string value;
        size_t i = eq + 2;
        bool closed = false;
        for (; i < line.size(); ++i) {
          char c = line[i];
          if (c == '\\' && i + 1 < line.size()) {
            char esc = line[++i];
            value.push_back(esc == 'n' ? '\n' : esc);
          } else if (c == '"') {
            closed = true;
            ++i;
            break;
          } else {
            value.push_back(c);
          }
        }
        if (!closed) {
          pos = std::string::npos;
          break;
        }
        s.labels[key] = value;
        pos = i;
        if (pos < line.size() && line[pos] == ',') ++pos;
      }
      if (pos == std::string::npos || pos >= line.size()) continue;
      ++pos;  // '}'
    }
    while (pos < line.size() && line[pos] == ' ') ++pos;
    if (pos >= line.size()) continue;
    s.value = std::strtoull(line.c_str() + pos, nullptr, 10);
    samples.push_back(std::move(s));
  }
  return samples;
}

double relative_divergence(uint64_t a, uint64_t b) {
  uint64_t diff = a > b ? a - b : b - a;
  return static_cast<double>(diff) /
         static_cast<double>(std::max<uint64_t>(a, 1));
}

}  // namespace

std::string ReconcileReport::to_string() const {
  std::ostringstream out;
  out << (ok ? "OK" : "DIVERGED") << " (tolerance "
      << tolerance << "): " << rows.size() << " comparisons\n";
  for (const ReconcileRow& row : rows) {
    out << "  " << (row.ok ? "  ok  " : "DIVERGE") << " tenant=" << row.tenant
        << " " << row.dimension << ": ledger=" << row.ledger_value
        << " metrics=" << row.metrics_value << "\n";
  }
  for (const std::string& p : problems) out << "  problem: " << p << "\n";
  return out.str();
}

std::map<std::string, UsageTotals> billing_totals_from_scrape(
    const std::string& prometheus_text) {
  std::map<std::string, UsageTotals> totals;
  for (const Sample& s : parse_scrape(prometheus_text)) {
    auto tenant_it = s.labels.find("tenant");
    if (tenant_it == s.labels.end()) continue;
    UsageTotals& t = totals[tenant_it->second];
    if (s.name == "acctee_billing_logs_total") {
      t.final_logs += s.value;
    } else if (s.name == "acctee_billing_weighted_instructions_total") {
      t.weighted_instructions += s.value;
    } else if (s.name == "acctee_billing_peak_memory_bytes_total") {
      t.peak_memory_bytes += s.value;
    } else if (s.name == "acctee_billing_memory_integral_total") {
      t.memory_integral += s.value;
    } else if (s.name == "acctee_billing_io_bytes_in_total") {
      t.io_bytes_in += s.value;
    } else if (s.name == "acctee_billing_io_bytes_out_total") {
      t.io_bytes_out += s.value;
    }
  }
  return totals;
}

namespace {

ReconcileReport reconcile_totals(
    const std::map<std::string, UsageTotals>& from_ledger,
    const std::string& prometheus_text, double tolerance) {
  ReconcileReport report;
  report.tolerance = tolerance;
  std::map<std::string, UsageTotals> from_metrics =
      billing_totals_from_scrape(prometheus_text);

  for (const auto& [tenant, metric_totals] : from_metrics) {
    if (!from_ledger.count(tenant)) {
      report.problems.push_back("tenant \"" + tenant +
                                "\" has billing metrics but no ledger entries");
    }
  }
  for (const auto& [tenant, ledger_totals] : from_ledger) {
    auto it = from_metrics.find(tenant);
    if (it == from_metrics.end()) {
      report.problems.push_back("tenant \"" + tenant +
                                "\" has ledger entries but no billing metrics");
      continue;
    }
    const UsageTotals& m = it->second;
    auto compare = [&](const char* dimension, uint64_t lv, uint64_t mv) {
      ReconcileRow row;
      row.tenant = tenant;
      row.dimension = dimension;
      row.ledger_value = lv;
      row.metrics_value = mv;
      row.divergence = relative_divergence(lv, mv);
      row.ok = row.divergence <= tolerance;
      report.rows.push_back(std::move(row));
    };
    compare("logs", ledger_totals.final_logs, m.final_logs);
    compare("weighted_instructions", ledger_totals.weighted_instructions,
            m.weighted_instructions);
    compare("peak_memory_bytes", ledger_totals.peak_memory_bytes,
            m.peak_memory_bytes);
    compare("memory_integral", ledger_totals.memory_integral,
            m.memory_integral);
    compare("io_bytes_in", ledger_totals.io_bytes_in, m.io_bytes_in);
    compare("io_bytes_out", ledger_totals.io_bytes_out, m.io_bytes_out);
  }

  report.ok = report.problems.empty() &&
              std::all_of(report.rows.begin(), report.rows.end(),
                          [](const ReconcileRow& r) { return r.ok; });
  return report;
}

}  // namespace

ReconcileReport reconcile(const Ledger& ledger,
                          const std::string& prometheus_text,
                          double tolerance) {
  return reconcile_totals(ledger.totals_by_tenant(), prometheus_text,
                          tolerance);
}

ReconcileReport reconcile_set(const std::vector<const Ledger*>& ledgers,
                              const std::string& prometheus_text,
                              double tolerance) {
  return reconcile_totals(merged_totals_by_tenant(ledgers), prometheus_text,
                          tolerance);
}

}  // namespace acctee::audit
