// Trace-id resolution over audit ledgers (DESIGN.md §17).
//
// Resource-log payload v3 binds the gateway-allocated 128-bit trace id into
// every signed log, so a billed interval in the ledger is correlatable with
// the request (and span tree) that produced it. This module is the offline
// half of that correlation: given a ledger set (one hash chain per worker
// AE), find the entries a trace id billed — `acctee audit trace` is a thin
// wrapper. Lookup is read-only and proves nothing by itself; run
// audit::verify_ledger_set first if the ledger bytes are untrusted.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "audit/ledger.hpp"

namespace acctee::audit {

/// One ledger entry that carries the queried trace id.
struct TraceMatch {
  size_t ledger_index = 0;  // position in the queried ledger set
  size_t entry_index = 0;   // position within that ledger
  LedgerEntry entry;        // copy: valid past the ledgers' lifetime
};

/// Every entry (interim and final, in ledger-set order) whose signed log
/// carries trace id (hi, lo). Empty for a forged/unknown id — there is no
/// fuzzy matching, the id either billed or it did not.
std::vector<TraceMatch> find_by_trace(const std::vector<const Ledger*>& ledgers,
                                      uint64_t trace_hi, uint64_t trace_lo);

/// All distinct non-zero trace ids appearing in the set, in first-seen
/// order. Lets tooling enumerate correlatable intervals (e.g. to pick one
/// for a CI replay) without knowing ids a priori.
std::vector<std::pair<uint64_t, uint64_t>> distinct_trace_ids(
    const std::vector<const Ledger*>& ledgers);

/// Human-readable rendering of a match list for the CLI.
std::string render_trace_matches(const std::vector<TraceMatch>& matches);

}  // namespace acctee::audit
