#include "audit/trace_lookup.hpp"

#include <cstdio>

namespace acctee::audit {

std::vector<TraceMatch> find_by_trace(const std::vector<const Ledger*>& ledgers,
                                      uint64_t trace_hi, uint64_t trace_lo) {
  std::vector<TraceMatch> matches;
  if ((trace_hi | trace_lo) == 0) return matches;  // zero = "untraced"
  for (size_t li = 0; li < ledgers.size(); ++li) {
    const std::vector<LedgerEntry>& entries = ledgers[li]->entries();
    for (size_t ei = 0; ei < entries.size(); ++ei) {
      const core::ResourceUsageLog& log = entries[ei].signed_log.log;
      if (log.trace_hi == trace_hi && log.trace_lo == trace_lo) {
        matches.push_back({li, ei, entries[ei]});
      }
    }
  }
  return matches;
}

std::vector<std::pair<uint64_t, uint64_t>> distinct_trace_ids(
    const std::vector<const Ledger*>& ledgers) {
  std::vector<std::pair<uint64_t, uint64_t>> ids;
  for (const Ledger* ledger : ledgers) {
    for (const LedgerEntry& entry : ledger->entries()) {
      const core::ResourceUsageLog& log = entry.signed_log.log;
      if ((log.trace_hi | log.trace_lo) == 0) continue;
      std::pair<uint64_t, uint64_t> id{log.trace_hi, log.trace_lo};
      bool seen = false;
      for (const auto& existing : ids) {
        if (existing == id) {
          seen = true;
          break;
        }
      }
      if (!seen) ids.push_back(id);
    }
  }
  return ids;
}

std::string render_trace_matches(const std::vector<TraceMatch>& matches) {
  std::string out;
  for (const TraceMatch& m : matches) {
    const core::ResourceUsageLog& log = m.entry.signed_log.log;
    char head[96];
    std::snprintf(head, sizeof(head), "ledger %zu entry %zu: ",
                  m.ledger_index, m.entry_index);
    out += head;
    out += "tenant=" + m.entry.tenant + " function=" + m.entry.function +
           " " + log.to_string() + "\n";
  }
  return out;
}

}  // namespace acctee::audit
